// store.hpp — contiguous SoA document storage and the shared top-k scan.
//
// A VectorStore holds n documents as three parallel arrays: the embedding
// vectors (one flat row-major float block, cache-friendly for brute-force
// scans), the DocIds, and the packed slot labels (8 bytes/doc, consulted
// before the float row so predicate-filtered scans skip non-matching
// documents without touching their vectors). It is deliberately not
// thread-safe: FlatIndex and IvfIndex each guard their stores with one
// tsdx::Mutex (rank kIndex), and the k-means trainer works on private
// copies.
//
// scan_topk is the one scan kernel both backends use. It partitions the
// rows with tsdx::par::parallel_for (chunk boundaries a pure function of
// the row count, never the thread count), keeps a per-chunk top-k under the
// total order (score desc, DocId asc), and merges chunks in fixed chunk
// order — so results are bit-identical at any thread count, the same
// contract the compute kernels honor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "index/types.hpp"

namespace tsdx::index {

/// One scored candidate row, ordered by (score desc, id asc) everywhere.
struct Candidate {
  float score = 0.0f;
  DocId id = 0;
};

/// The strict total order every ranked surface of the index uses. Strictness
/// (ids are compared, not just scores) is what makes top-k selection
/// deterministic without relying on sort stability.
inline bool better(const Candidate& a, const Candidate& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Exact cosine similarity over `dim` contiguous floats — the same
/// arithmetic, in the same accumulation order, as sdl::cosine_similarity,
/// so index scores are bit-identical to direct embedding-space scans.
float exact_cosine(const float* a, const float* b, std::size_t dim);

class VectorStore {
 public:
  explicit VectorStore(std::size_t dim);

  std::size_t dim() const { return dim_; }
  std::size_t size() const { return ids_.size(); }

  /// Append one document (vec must hold dim() floats). Returns its row.
  std::size_t append(DocId id, const float* vec, const PackedLabels& labels);

  const float* vec(std::size_t row) const { return data_.data() + row * dim_; }
  DocId id(std::size_t row) const { return ids_[row]; }
  const PackedLabels& labels(std::size_t row) const { return labels_[row]; }

  void reserve(std::size_t docs);
  /// Bytes held across the three arrays (capacity, not size).
  std::size_t memory_bytes() const;

 private:
  std::size_t dim_;
  std::vector<float> data_;  ///< row-major size() x dim()
  std::vector<DocId> ids_;
  std::vector<PackedLabels> labels_;
};

/// Append the store's top-k predicate-matching rows to `out` (unsorted
/// across calls; callers merge and sort). Deterministic at any thread
/// count. Returns the number of rows that passed the predicate filter.
std::size_t scan_topk(const VectorStore& store, const float* query,
                      std::size_t k,
                      const std::vector<SlotPredicate>& predicates,
                      std::vector<Candidate>& out);

/// Sort candidates by (score desc, id asc), truncate to k, convert to Hits.
std::vector<Hit> finalize_topk(std::vector<Candidate> candidates,
                               std::size_t k);

}  // namespace tsdx::index
