// embedding.hpp — Scenario2Vector-style metric embedding of descriptions.
//
// A ScenarioDescription maps to a fixed-length vector: the concatenated
// one-hot encodings of the 8 SDL slots, each block scaled by a per-slot
// importance weight (actions matter more than weather for "is this the same
// scenario?"), plus a multi-hot block for background-actor types. Cosine
// similarity on these vectors gives a semantically meaningful scenario
// distance, which powers the retrieval experiment (R-F3) and the
// scenario-search example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sdl/description.hpp"

namespace tsdx::sdl {

/// Per-slot importance weights applied to each one-hot block.
struct EmbeddingWeights {
  float road_layout = 1.0f;
  float time_of_day = 0.5f;
  float weather = 0.5f;
  float density = 0.5f;
  float ego_action = 2.0f;
  float actor_type = 1.5f;
  float actor_action = 2.0f;
  float actor_position = 1.0f;
  float background = 0.25f;
};

/// Dimensionality of scenario vectors (sum of slot cardinalities plus the
/// background multi-hot block of kNumActorTypes-1 real types).
std::size_t scenario_vector_dim();

/// Embed a description. The result is L2-normalized unless it is all-zero
/// (impossible for valid descriptions).
std::vector<float> scenario_to_vector(const ScenarioDescription& d,
                                      const EmbeddingWeights& w = {});

/// Cosine similarity in [-1, 1]; 1 means identical slot assignments.
float cosine_similarity(const std::vector<float>& a,
                        const std::vector<float>& b);

/// Convenience: similarity of two descriptions under weights `w`.
float scenario_similarity(const ScenarioDescription& a,
                          const ScenarioDescription& b,
                          const EmbeddingWeights& w = {});

/// In-memory scenario search index: id -> (description, vector).
class ScenarioIndex {
 public:
  explicit ScenarioIndex(EmbeddingWeights weights = {})
      : weights_(weights) {}

  /// Insert a description under a caller-chosen id; returns its slot.
  std::size_t add(std::string id, const ScenarioDescription& d);

  std::size_t size() const { return entries_.size(); }

  struct Hit {
    std::string id;
    float similarity;
  };

  /// Top-k most similar stored scenarios (ties broken by insertion order).
  std::vector<Hit> query(const ScenarioDescription& q, std::size_t k) const;

  const ScenarioDescription& description(std::size_t slot) const {
    return entries_.at(slot).description;
  }

 private:
  struct Entry {
    std::string id;
    ScenarioDescription description;
    std::vector<float> vec;
  };
  EmbeddingWeights weights_;
  std::vector<Entry> entries_;
};

}  // namespace tsdx::sdl
