// description.hpp — structured traffic scenario descriptions.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sdl/taxonomy.hpp"

namespace tsdx::sdl {

/// One non-ego traffic participant.
struct ActorDescription {
  ActorType type = ActorType::kNone;
  ActorAction action = ActorAction::kNone;
  RelativePosition position = RelativePosition::kNone;

  bool operator==(const ActorDescription&) const = default;
};

/// Static scene context.
struct EnvironmentDescription {
  RoadLayout road_layout = RoadLayout::kStraight;
  TimeOfDay time_of_day = TimeOfDay::kDay;
  Weather weather = Weather::kClear;
  TrafficDensity density = TrafficDensity::kSparse;

  bool operator==(const EnvironmentDescription&) const = default;
};

/// Full description of a clip: environment, ego manoeuvre, the salient
/// actor (the one the extraction model is trained to report) and any number
/// of background actors (kept for simulation/ground-truth purposes).
struct ScenarioDescription {
  EnvironmentDescription environment;
  EgoAction ego_action = EgoAction::kCruise;
  ActorDescription salient_actor;  ///< all-kNone when the scene has none
  std::vector<ActorDescription> background_actors;

  bool operator==(const ScenarioDescription&) const = default;
};

/// Class index of each of the 8 SDL slots, in Slot order. This is the label
/// vector the extraction model is trained against.
using SlotLabels = std::array<std::size_t, kNumSlots>;

SlotLabels to_slot_labels(const ScenarioDescription& d);

/// Inverse of to_slot_labels (background actors cannot be recovered and are
/// left empty). Throws std::out_of_range on labels outside a slot's range.
ScenarioDescription from_slot_labels(const SlotLabels& labels);

/// Semantic validity rules of the SDL. A description violating these can
/// never be produced by the simulator and should never be accepted from an
/// external source:
///  * pedestrians never cruise/turn/lane-keep — only cross, stop, or none;
///  * `cross` is only valid for pedestrians and cyclists;
///  * a kNone actor type requires kNone action and position (and vice versa);
///  * turn actions (ego or actor) require an intersection/T-junction layout.
/// Returns an empty vector when valid, else one message per violation.
std::vector<std::string> validate(const ScenarioDescription& d);

inline bool is_valid(const ScenarioDescription& d) { return validate(d).empty(); }

/// Render a single-sentence natural-language summary, e.g.
/// "At a 4-way intersection on a clear day with sparse traffic, the ego
///  vehicle turns left while a pedestrian crosses ahead."
std::string to_sentence(const ScenarioDescription& d);

}  // namespace tsdx::sdl
