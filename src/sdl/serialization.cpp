#include "sdl/serialization.hpp"

namespace tsdx::sdl {

Json to_json(const ActorDescription& a) {
  JsonObject o;
  o.emplace("type", Json(to_string(a.type)));
  o.emplace("action", Json(to_string(a.action)));
  o.emplace("position", Json(to_string(a.position)));
  return Json(std::move(o));
}

Json to_json(const EnvironmentDescription& e) {
  JsonObject o;
  o.emplace("road_layout", Json(to_string(e.road_layout)));
  o.emplace("time_of_day", Json(to_string(e.time_of_day)));
  o.emplace("weather", Json(to_string(e.weather)));
  o.emplace("traffic_density", Json(to_string(e.density)));
  return Json(std::move(o));
}

Json to_json(const ScenarioDescription& d) {
  JsonObject o;
  o.emplace("environment", to_json(d.environment));
  o.emplace("ego_action", Json(to_string(d.ego_action)));
  o.emplace("salient_actor", to_json(d.salient_actor));
  JsonArray bg;
  for (const auto& a : d.background_actors) bg.push_back(to_json(a));
  o.emplace("background_actors", Json(std::move(bg)));
  return Json(std::move(o));
}

namespace {

bool set_error(std::string* error, const std::string& msg) {
  if (error && error->empty()) *error = msg;
  return false;
}

const std::string* get_string_field(const Json& j, const std::string& key,
                                    std::string* error) {
  const Json* f = j.find(key);
  if (!f || !f->is_string()) {
    set_error(error, "missing or non-string field '" + key + "'");
    return nullptr;
  }
  return &f->as_string();
}

bool parse_actor(const Json& j, ActorDescription& out, std::string* error) {
  if (!j.is_object()) return set_error(error, "actor must be an object");
  const std::string* type = get_string_field(j, "type", error);
  const std::string* action = get_string_field(j, "action", error);
  const std::string* position = get_string_field(j, "position", error);
  if (!type || !action || !position) return false;
  const auto t = parse_actor_type(*type);
  const auto a = parse_actor_action(*action);
  const auto p = parse_relative_position(*position);
  if (!t) return set_error(error, "unknown actor type '" + *type + "'");
  if (!a) return set_error(error, "unknown actor action '" + *action + "'");
  if (!p) return set_error(error, "unknown position '" + *position + "'");
  out = ActorDescription{*t, *a, *p};
  return true;
}

}  // namespace

std::optional<ScenarioDescription> description_from_json(const Json& j,
                                                         std::string* error) {
  if (!j.is_object()) {
    set_error(error, "description must be an object");
    return std::nullopt;
  }
  ScenarioDescription d;

  const Json* env = j.find("environment");
  if (!env || !env->is_object()) {
    set_error(error, "missing 'environment' object");
    return std::nullopt;
  }
  const std::string* road = get_string_field(*env, "road_layout", error);
  const std::string* tod = get_string_field(*env, "time_of_day", error);
  const std::string* weather = get_string_field(*env, "weather", error);
  const std::string* density = get_string_field(*env, "traffic_density", error);
  if (!road || !tod || !weather || !density) return std::nullopt;
  const auto r = parse_road_layout(*road);
  const auto t = parse_time_of_day(*tod);
  const auto w = parse_weather(*weather);
  const auto dn = parse_traffic_density(*density);
  if (!r || !t || !w || !dn) {
    set_error(error, "unknown environment token");
    return std::nullopt;
  }
  d.environment = EnvironmentDescription{*r, *t, *w, *dn};

  const std::string* ego = get_string_field(j, "ego_action", error);
  if (!ego) return std::nullopt;
  const auto e = parse_ego_action(*ego);
  if (!e) {
    set_error(error, "unknown ego action '" + *ego + "'");
    return std::nullopt;
  }
  d.ego_action = *e;

  const Json* salient = j.find("salient_actor");
  if (!salient) {
    set_error(error, "missing 'salient_actor'");
    return std::nullopt;
  }
  if (!parse_actor(*salient, d.salient_actor, error)) return std::nullopt;

  if (const Json* bg = j.find("background_actors")) {
    if (!bg->is_array()) {
      set_error(error, "'background_actors' must be an array");
      return std::nullopt;
    }
    for (const Json& item : bg->as_array()) {
      ActorDescription a;
      if (!parse_actor(item, a, error)) return std::nullopt;
      d.background_actors.push_back(a);
    }
  }
  return d;
}

std::string to_json_string(const ScenarioDescription& d, bool pretty) {
  const Json j = to_json(d);
  return pretty ? j.dump_pretty() : j.dump();
}

std::optional<ScenarioDescription> description_from_string(
    std::string_view text, std::string* error) {
  auto j = Json::parse(text, error);
  if (!j) return std::nullopt;
  return description_from_json(*j, error);
}

}  // namespace tsdx::sdl
