#include "sdl/taxonomy.hpp"

namespace tsdx::sdl {

namespace {

constexpr std::array<std::string_view, kNumRoadLayouts> kRoadNames = {
    "straight", "curve", "intersection4", "t_junction"};
constexpr std::array<std::string_view, kNumTimesOfDay> kTimeNames = {
    "day", "dusk", "night"};
constexpr std::array<std::string_view, kNumWeathers> kWeatherNames = {
    "clear", "rain", "fog"};
constexpr std::array<std::string_view, kNumTrafficDensities> kDensityNames = {
    "sparse", "medium", "dense"};
constexpr std::array<std::string_view, kNumEgoActions> kEgoNames = {
    "cruise", "stop", "turn_left", "turn_right", "lane_change_left",
    "lane_change_right"};
constexpr std::array<std::string_view, kNumActorTypes> kActorTypeNames = {
    "none", "car", "truck", "pedestrian", "cyclist"};
constexpr std::array<std::string_view, kNumActorActions> kActorActionNames = {
    "none", "cruise", "stop", "turn_left", "turn_right", "cross", "parked"};
constexpr std::array<std::string_view, kNumRelativePositions> kPositionNames = {
    "none", "ahead", "behind", "left", "right", "oncoming"};
constexpr std::array<std::string_view, kNumSlots> kSlotNames = {
    "road_layout",  "time_of_day", "weather",      "traffic_density",
    "ego_action",   "actor_type",  "actor_action", "actor_position"};

template <class E, std::size_t N>
std::optional<E> parse_enum(const std::array<std::string_view, N>& names,
                            std::string_view s) {
  for (std::size_t i = 0; i < N; ++i) {
    if (names[i] == s) return static_cast<E>(i);
  }
  return std::nullopt;
}

}  // namespace

std::string_view to_string(RoadLayout v) {
  return kRoadNames[static_cast<std::size_t>(v)];
}
std::string_view to_string(TimeOfDay v) {
  return kTimeNames[static_cast<std::size_t>(v)];
}
std::string_view to_string(Weather v) {
  return kWeatherNames[static_cast<std::size_t>(v)];
}
std::string_view to_string(TrafficDensity v) {
  return kDensityNames[static_cast<std::size_t>(v)];
}
std::string_view to_string(EgoAction v) {
  return kEgoNames[static_cast<std::size_t>(v)];
}
std::string_view to_string(ActorType v) {
  return kActorTypeNames[static_cast<std::size_t>(v)];
}
std::string_view to_string(ActorAction v) {
  return kActorActionNames[static_cast<std::size_t>(v)];
}
std::string_view to_string(RelativePosition v) {
  return kPositionNames[static_cast<std::size_t>(v)];
}
std::string_view to_string(Slot slot) {
  return kSlotNames[static_cast<std::size_t>(slot)];
}

std::optional<RoadLayout> parse_road_layout(std::string_view s) {
  return parse_enum<RoadLayout>(kRoadNames, s);
}
std::optional<TimeOfDay> parse_time_of_day(std::string_view s) {
  return parse_enum<TimeOfDay>(kTimeNames, s);
}
std::optional<Weather> parse_weather(std::string_view s) {
  return parse_enum<Weather>(kWeatherNames, s);
}
std::optional<TrafficDensity> parse_traffic_density(std::string_view s) {
  return parse_enum<TrafficDensity>(kDensityNames, s);
}
std::optional<EgoAction> parse_ego_action(std::string_view s) {
  return parse_enum<EgoAction>(kEgoNames, s);
}
std::optional<ActorType> parse_actor_type(std::string_view s) {
  return parse_enum<ActorType>(kActorTypeNames, s);
}
std::optional<ActorAction> parse_actor_action(std::string_view s) {
  return parse_enum<ActorAction>(kActorActionNames, s);
}
std::optional<RelativePosition> parse_relative_position(std::string_view s) {
  return parse_enum<RelativePosition>(kPositionNames, s);
}

std::string_view slot_class_name(Slot slot, std::size_t cls) {
  switch (slot) {
    case Slot::kRoadLayout:
      return kRoadNames.at(cls);
    case Slot::kTimeOfDay:
      return kTimeNames.at(cls);
    case Slot::kWeather:
      return kWeatherNames.at(cls);
    case Slot::kTrafficDensity:
      return kDensityNames.at(cls);
    case Slot::kEgoAction:
      return kEgoNames.at(cls);
    case Slot::kActorType:
      return kActorTypeNames.at(cls);
    case Slot::kActorAction:
      return kActorActionNames.at(cls);
    case Slot::kActorPosition:
      return kPositionNames.at(cls);
  }
  return "?";
}

}  // namespace tsdx::sdl
