// taxonomy.hpp — the controlled vocabulary of the Scenario Description
// Language (SDL).
//
// The SDL describes a short driving clip with eight categorical slots:
// four environment slots, the ego manoeuvre, and (type, action, relative
// position) of the most salient non-ego actor. Slot values are closed
// enumerations so descriptions are machine-comparable, embeddable, and
// directly usable as classification targets for the extraction model.
//
// The "kNone" values exist because a clip may legitimately contain no
// salient actor; they are valid labels, not error markers.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace tsdx::sdl {

// ---- environment -----------------------------------------------------------

enum class RoadLayout : std::uint8_t {
  kStraight = 0,
  kCurve,
  kIntersection4,  ///< 4-way intersection
  kTJunction,
};
inline constexpr std::size_t kNumRoadLayouts = 4;

enum class TimeOfDay : std::uint8_t { kDay = 0, kDusk, kNight };
inline constexpr std::size_t kNumTimesOfDay = 3;

enum class Weather : std::uint8_t { kClear = 0, kRain, kFog };
inline constexpr std::size_t kNumWeathers = 3;

enum class TrafficDensity : std::uint8_t { kSparse = 0, kMedium, kDense };
inline constexpr std::size_t kNumTrafficDensities = 3;

// ---- ego --------------------------------------------------------------------

enum class EgoAction : std::uint8_t {
  kCruise = 0,
  kStop,
  kTurnLeft,
  kTurnRight,
  kLaneChangeLeft,
  kLaneChangeRight,
};
inline constexpr std::size_t kNumEgoActions = 6;

// ---- salient actor ------------------------------------------------------------

enum class ActorType : std::uint8_t {
  kNone = 0,  ///< clip contains no salient non-ego actor
  kCar,
  kTruck,
  kPedestrian,
  kCyclist,
};
inline constexpr std::size_t kNumActorTypes = 5;

enum class ActorAction : std::uint8_t {
  kNone = 0,
  kCruise,
  kStop,
  kTurnLeft,
  kTurnRight,
  kCross,   ///< crossing the ego lane (pedestrian/cyclist)
  kParked,
};
inline constexpr std::size_t kNumActorActions = 7;

enum class RelativePosition : std::uint8_t {
  kNone = 0,
  kAhead,
  kBehind,
  kLeft,
  kRight,
  kOncoming,
};
inline constexpr std::size_t kNumRelativePositions = 6;

// ---- names & parsing -----------------------------------------------------------
// to_string returns a stable lowercase token (used in JSON); parse_* accept
// exactly those tokens and return nullopt otherwise.

std::string_view to_string(RoadLayout v);
std::string_view to_string(TimeOfDay v);
std::string_view to_string(Weather v);
std::string_view to_string(TrafficDensity v);
std::string_view to_string(EgoAction v);
std::string_view to_string(ActorType v);
std::string_view to_string(ActorAction v);
std::string_view to_string(RelativePosition v);

std::optional<RoadLayout> parse_road_layout(std::string_view s);
std::optional<TimeOfDay> parse_time_of_day(std::string_view s);
std::optional<Weather> parse_weather(std::string_view s);
std::optional<TrafficDensity> parse_traffic_density(std::string_view s);
std::optional<EgoAction> parse_ego_action(std::string_view s);
std::optional<ActorType> parse_actor_type(std::string_view s);
std::optional<ActorAction> parse_actor_action(std::string_view s);
std::optional<RelativePosition> parse_relative_position(std::string_view s);

// ---- slot metadata ----------------------------------------------------------------
// The extraction model and the metrics code iterate over slots generically.

enum class Slot : std::uint8_t {
  kRoadLayout = 0,
  kTimeOfDay,
  kWeather,
  kTrafficDensity,
  kEgoAction,
  kActorType,
  kActorAction,
  kActorPosition,
};
inline constexpr std::size_t kNumSlots = 8;

/// Number of classes of each slot, indexed by Slot.
inline constexpr std::array<std::size_t, kNumSlots> kSlotCardinality = {
    kNumRoadLayouts,   kNumTimesOfDay,  kNumWeathers,
    kNumTrafficDensities, kNumEgoActions, kNumActorTypes,
    kNumActorActions,  kNumRelativePositions,
};

std::string_view to_string(Slot slot);

/// Human-readable name of class `cls` within `slot` (for reports).
std::string_view slot_class_name(Slot slot, std::size_t cls);

}  // namespace tsdx::sdl
