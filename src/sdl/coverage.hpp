// coverage.hpp — scenario-coverage analysis over SDL descriptions.
//
// The operational question in AV validation: "which scenario combinations
// has this dataset / drive log actually exercised?" This module measures
// single-slot value coverage and pairwise combination coverage ("pedestrian
// crossing" x "night") against the set of *semantically valid* combinations,
// and lists what's missing — i.e. the test cases still to be mined or
// synthesized.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "sdl/description.hpp"

namespace tsdx::sdl {

/// Enumerate every semantically valid SlotLabels assignment (computed once,
/// cached). A pair/tuple of slot values is "valid" iff it appears in at
/// least one member of this set.
const std::vector<SlotLabels>& all_valid_label_combinations();

class CoverageAnalyzer {
 public:
  CoverageAnalyzer();

  void add(const ScenarioDescription& description);
  void add(const SlotLabels& labels);

  std::size_t count() const { return count_; }
  std::size_t seen_count(Slot slot, std::size_t cls) const {
    return seen_[static_cast<std::size_t>(slot)].at(cls);
  }

  /// Fraction of `slot`'s values observed at least once.
  double slot_value_coverage(Slot slot) const;
  /// Mean of slot_value_coverage over all 8 slots.
  double overall_value_coverage() const;

  /// Fraction of *valid* (value_a, value_b) combinations observed.
  double pair_coverage(Slot a, Slot b) const;

  struct MissingPair {
    std::string value_a;
    std::string value_b;
  };
  /// Valid but never-observed combinations for a slot pair, in label order.
  std::vector<MissingPair> missing_pairs(Slot a, Slot b) const;

 private:
  std::array<std::vector<std::size_t>, kNumSlots> seen_;
  /// seen pair matrix per (a, b): pair_seen_[a][b][va * card_b + vb]
  std::vector<std::vector<std::vector<bool>>> pair_seen_;
  std::size_t count_ = 0;
};

}  // namespace tsdx::sdl
