#include "sdl/description.hpp"

#include <stdexcept>

namespace tsdx::sdl {

SlotLabels to_slot_labels(const ScenarioDescription& d) {
  return SlotLabels{
      static_cast<std::size_t>(d.environment.road_layout),
      static_cast<std::size_t>(d.environment.time_of_day),
      static_cast<std::size_t>(d.environment.weather),
      static_cast<std::size_t>(d.environment.density),
      static_cast<std::size_t>(d.ego_action),
      static_cast<std::size_t>(d.salient_actor.type),
      static_cast<std::size_t>(d.salient_actor.action),
      static_cast<std::size_t>(d.salient_actor.position),
  };
}

ScenarioDescription from_slot_labels(const SlotLabels& labels) {
  for (std::size_t i = 0; i < kNumSlots; ++i) {
    if (labels[i] >= kSlotCardinality[i]) {
      throw std::out_of_range("from_slot_labels: slot " + std::to_string(i) +
                              " label " + std::to_string(labels[i]) +
                              " out of range");
    }
  }
  ScenarioDescription d;
  d.environment.road_layout = static_cast<RoadLayout>(labels[0]);
  d.environment.time_of_day = static_cast<TimeOfDay>(labels[1]);
  d.environment.weather = static_cast<Weather>(labels[2]);
  d.environment.density = static_cast<TrafficDensity>(labels[3]);
  d.ego_action = static_cast<EgoAction>(labels[4]);
  d.salient_actor.type = static_cast<ActorType>(labels[5]);
  d.salient_actor.action = static_cast<ActorAction>(labels[6]);
  d.salient_actor.position = static_cast<RelativePosition>(labels[7]);
  return d;
}

namespace {

void validate_actor(const ActorDescription& a, const RoadLayout layout,
                    const char* which, std::vector<std::string>& out) {
  const bool none_type = a.type == ActorType::kNone;
  const bool none_action = a.action == ActorAction::kNone;
  const bool none_pos = a.position == RelativePosition::kNone;
  if (none_type != none_action || none_type != none_pos) {
    out.push_back(std::string(which) +
                  ": type/action/position must be all-none or all-set");
    return;
  }
  if (none_type) return;

  const bool is_vru =
      a.type == ActorType::kPedestrian || a.type == ActorType::kCyclist;
  if (a.action == ActorAction::kCross && !is_vru) {
    out.push_back(std::string(which) + ": 'cross' requires pedestrian/cyclist");
  }
  if (a.type == ActorType::kPedestrian) {
    const bool allowed = a.action == ActorAction::kCross ||
                         a.action == ActorAction::kStop;
    if (!allowed) {
      out.push_back(std::string(which) +
                    ": pedestrians may only 'cross' or 'stop'");
    }
  }
  const bool is_turn = a.action == ActorAction::kTurnLeft ||
                       a.action == ActorAction::kTurnRight;
  const bool has_junction = layout == RoadLayout::kIntersection4 ||
                            layout == RoadLayout::kTJunction;
  if (is_turn && !has_junction) {
    out.push_back(std::string(which) +
                  ": turning requires an intersection or T-junction");
  }
}

}  // namespace

std::vector<std::string> validate(const ScenarioDescription& d) {
  std::vector<std::string> out;
  const RoadLayout layout = d.environment.road_layout;

  const bool ego_turns = d.ego_action == EgoAction::kTurnLeft ||
                         d.ego_action == EgoAction::kTurnRight;
  const bool has_junction = layout == RoadLayout::kIntersection4 ||
                            layout == RoadLayout::kTJunction;
  if (ego_turns && !has_junction) {
    out.push_back("ego: turning requires an intersection or T-junction");
  }
  validate_actor(d.salient_actor, layout, "salient_actor", out);
  for (std::size_t i = 0; i < d.background_actors.size(); ++i) {
    const auto& a = d.background_actors[i];
    if (a.type == ActorType::kNone) {
      out.push_back("background_actor[" + std::to_string(i) +
                    "]: type must not be 'none'");
      continue;
    }
    validate_actor(a, layout, "background_actor", out);
  }
  return out;
}

namespace {

std::string layout_phrase(RoadLayout layout) {
  switch (layout) {
    case RoadLayout::kStraight:
      return "on a straight road";
    case RoadLayout::kCurve:
      return "on a curved road";
    case RoadLayout::kIntersection4:
      return "at a 4-way intersection";
    case RoadLayout::kTJunction:
      return "at a T-junction";
  }
  return "";
}

std::string time_weather_phrase(TimeOfDay t, Weather w) {
  std::string tw;
  switch (w) {
    case Weather::kClear:
      tw = "a clear";
      break;
    case Weather::kRain:
      tw = "a rainy";
      break;
    case Weather::kFog:
      tw = "a foggy";
      break;
  }
  switch (t) {
    case TimeOfDay::kDay:
      return tw + " day";
    case TimeOfDay::kDusk:
      return tw + " dusk";
    case TimeOfDay::kNight:
      return tw + " night";
  }
  return tw;
}

std::string ego_phrase(EgoAction a) {
  switch (a) {
    case EgoAction::kCruise:
      return "the ego vehicle cruises";
    case EgoAction::kStop:
      return "the ego vehicle stops";
    case EgoAction::kTurnLeft:
      return "the ego vehicle turns left";
    case EgoAction::kTurnRight:
      return "the ego vehicle turns right";
    case EgoAction::kLaneChangeLeft:
      return "the ego vehicle changes lane to the left";
    case EgoAction::kLaneChangeRight:
      return "the ego vehicle changes lane to the right";
  }
  return "";
}

std::string actor_phrase(const ActorDescription& a) {
  if (a.type == ActorType::kNone) return "";
  std::string noun;
  switch (a.type) {
    case ActorType::kCar:
      noun = "a car";
      break;
    case ActorType::kTruck:
      noun = "a truck";
      break;
    case ActorType::kPedestrian:
      noun = "a pedestrian";
      break;
    case ActorType::kCyclist:
      noun = "a cyclist";
      break;
    case ActorType::kNone:
      break;
  }
  std::string verb;
  switch (a.action) {
    case ActorAction::kCruise:
      verb = "drives";
      break;
    case ActorAction::kStop:
      verb = "is stopped";
      break;
    case ActorAction::kTurnLeft:
      verb = "turns left";
      break;
    case ActorAction::kTurnRight:
      verb = "turns right";
      break;
    case ActorAction::kCross:
      verb = "crosses";
      break;
    case ActorAction::kParked:
      verb = "is parked";
      break;
    case ActorAction::kNone:
      break;
  }
  std::string where;
  switch (a.position) {
    case RelativePosition::kAhead:
      where = "ahead";
      break;
    case RelativePosition::kBehind:
      where = "behind";
      break;
    case RelativePosition::kLeft:
      where = "to the left";
      break;
    case RelativePosition::kRight:
      where = "to the right";
      break;
    case RelativePosition::kOncoming:
      where = "oncoming";
      break;
    case RelativePosition::kNone:
      break;
  }
  std::string phrase = noun + " " + verb;
  if (!where.empty()) phrase += " " + where;
  return phrase;
}

std::string density_phrase(TrafficDensity d) {
  switch (d) {
    case TrafficDensity::kSparse:
      return "sparse traffic";
    case TrafficDensity::kMedium:
      return "moderate traffic";
    case TrafficDensity::kDense:
      return "dense traffic";
  }
  return "";
}

}  // namespace

std::string to_sentence(const ScenarioDescription& d) {
  std::string s = "At " + layout_phrase(d.environment.road_layout).substr(3);
  // layout_phrase starts with "on "/"at "; normalize to "At a ..." style.
  s = (d.environment.road_layout == RoadLayout::kStraight ||
       d.environment.road_layout == RoadLayout::kCurve)
          ? "On " + layout_phrase(d.environment.road_layout).substr(3)
          : "At " + layout_phrase(d.environment.road_layout).substr(3);
  s += " on " +
       time_weather_phrase(d.environment.time_of_day, d.environment.weather);
  s += " with " + density_phrase(d.environment.density);
  s += ", " + ego_phrase(d.ego_action);
  const std::string actor = actor_phrase(d.salient_actor);
  if (!actor.empty()) s += " while " + actor;
  s += ".";
  return s;
}

}  // namespace tsdx::sdl
