#include "sdl/spec.hpp"

#include "sdl/coverage.hpp"

namespace tsdx::sdl {

std::size_t PartialScenarioSpec::constraint_count() const {
  std::size_t n = 0;
  n += road_layout.has_value();
  n += time_of_day.has_value();
  n += weather.has_value();
  n += density.has_value();
  n += ego_action.has_value();
  n += actor_type.has_value();
  n += actor_action.has_value();
  n += actor_position.has_value();
  return n;
}

bool matches(const PartialScenarioSpec& spec, const SlotLabels& labels) {
  const auto check = [&labels](const auto& opt, Slot slot) {
    return !opt.has_value() ||
           labels[static_cast<std::size_t>(slot)] ==
               static_cast<std::size_t>(*opt);
  };
  return check(spec.road_layout, Slot::kRoadLayout) &&
         check(spec.time_of_day, Slot::kTimeOfDay) &&
         check(spec.weather, Slot::kWeather) &&
         check(spec.density, Slot::kTrafficDensity) &&
         check(spec.ego_action, Slot::kEgoAction) &&
         check(spec.actor_type, Slot::kActorType) &&
         check(spec.actor_action, Slot::kActorAction) &&
         check(spec.actor_position, Slot::kActorPosition);
}

bool matches(const PartialScenarioSpec& spec, const ScenarioDescription& d) {
  return matches(spec, to_slot_labels(d));
}

std::vector<SlotLabels> valid_completions(const PartialScenarioSpec& spec) {
  std::vector<SlotLabels> out;
  for (const SlotLabels& labels : all_valid_label_combinations()) {
    if (matches(spec, labels)) out.push_back(labels);
  }
  return out;
}

std::optional<ScenarioDescription> sample_matching(
    const PartialScenarioSpec& spec, tensor::Rng& rng) {
  const std::vector<SlotLabels> candidates = valid_completions(spec);
  if (candidates.empty()) return std::nullopt;
  const SlotLabels& pick =
      candidates[static_cast<std::size_t>(rng.uniform_index(candidates.size()))];
  return from_slot_labels(pick);
}

}  // namespace tsdx::sdl
