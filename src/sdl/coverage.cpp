#include "sdl/coverage.hpp"

namespace tsdx::sdl {

namespace {

/// Valid-pair lookup: valid_pairs[a][b][va * card_b + vb].
using PairTable = std::vector<std::vector<std::vector<bool>>>;

const PairTable& valid_pair_table() {
  static const PairTable table = [] {
    PairTable t(kNumSlots,
                std::vector<std::vector<bool>>(kNumSlots));
    for (std::size_t a = 0; a < kNumSlots; ++a) {
      for (std::size_t b = 0; b < kNumSlots; ++b) {
        t[a][b].assign(kSlotCardinality[a] * kSlotCardinality[b], false);
      }
    }
    for (const SlotLabels& labels : all_valid_label_combinations()) {
      for (std::size_t a = 0; a < kNumSlots; ++a) {
        for (std::size_t b = 0; b < kNumSlots; ++b) {
          t[a][b][labels[a] * kSlotCardinality[b] + labels[b]] = true;
        }
      }
    }
    return t;
  }();
  return table;
}

}  // namespace

const std::vector<SlotLabels>& all_valid_label_combinations() {
  static const std::vector<SlotLabels> combos = [] {
    std::vector<SlotLabels> out;
    SlotLabels labels{};
    // Mixed-radix enumeration over all 8 slots (~136k tuples, checked once).
    while (true) {
      if (is_valid(from_slot_labels(labels))) out.push_back(labels);
      // increment
      std::size_t i = kNumSlots;
      while (i-- > 0) {
        if (++labels[i] < kSlotCardinality[i]) break;
        labels[i] = 0;
        if (i == 0) return out;
      }
    }
  }();
  return combos;
}

CoverageAnalyzer::CoverageAnalyzer() {
  for (std::size_t s = 0; s < kNumSlots; ++s) {
    seen_[s].assign(kSlotCardinality[s], 0);
  }
  pair_seen_.assign(kNumSlots, std::vector<std::vector<bool>>(kNumSlots));
  for (std::size_t a = 0; a < kNumSlots; ++a) {
    for (std::size_t b = 0; b < kNumSlots; ++b) {
      pair_seen_[a][b].assign(kSlotCardinality[a] * kSlotCardinality[b],
                              false);
    }
  }
}

void CoverageAnalyzer::add(const ScenarioDescription& description) {
  add(to_slot_labels(description));
}

void CoverageAnalyzer::add(const SlotLabels& labels) {
  for (std::size_t s = 0; s < kNumSlots; ++s) {
    seen_[s].at(labels[s])++;
  }
  for (std::size_t a = 0; a < kNumSlots; ++a) {
    for (std::size_t b = 0; b < kNumSlots; ++b) {
      pair_seen_[a][b][labels[a] * kSlotCardinality[b] + labels[b]] = true;
    }
  }
  ++count_;
}

double CoverageAnalyzer::slot_value_coverage(Slot slot) const {
  const auto& seen = seen_[static_cast<std::size_t>(slot)];
  std::size_t covered = 0;
  for (std::size_t c : seen) covered += c > 0 ? 1 : 0;
  return static_cast<double>(covered) / static_cast<double>(seen.size());
}

double CoverageAnalyzer::overall_value_coverage() const {
  double sum = 0.0;
  for (std::size_t s = 0; s < kNumSlots; ++s) {
    sum += slot_value_coverage(static_cast<Slot>(s));
  }
  return sum / static_cast<double>(kNumSlots);
}

double CoverageAnalyzer::pair_coverage(Slot a, Slot b) const {
  const std::size_t ia = static_cast<std::size_t>(a);
  const std::size_t ib = static_cast<std::size_t>(b);
  const auto& valid = valid_pair_table()[ia][ib];
  const auto& seen = pair_seen_[ia][ib];
  std::size_t valid_n = 0, covered = 0;
  for (std::size_t i = 0; i < valid.size(); ++i) {
    if (!valid[i]) continue;
    ++valid_n;
    if (seen[i]) ++covered;
  }
  return valid_n == 0
             ? 1.0
             : static_cast<double>(covered) / static_cast<double>(valid_n);
}

std::vector<CoverageAnalyzer::MissingPair> CoverageAnalyzer::missing_pairs(
    Slot a, Slot b) const {
  const std::size_t ia = static_cast<std::size_t>(a);
  const std::size_t ib = static_cast<std::size_t>(b);
  const auto& valid = valid_pair_table()[ia][ib];
  const auto& seen = pair_seen_[ia][ib];
  std::vector<MissingPair> out;
  for (std::size_t va = 0; va < kSlotCardinality[ia]; ++va) {
    for (std::size_t vb = 0; vb < kSlotCardinality[ib]; ++vb) {
      const std::size_t idx = va * kSlotCardinality[ib] + vb;
      if (valid[idx] && !seen[idx]) {
        out.push_back(MissingPair{std::string(slot_class_name(a, va)),
                                  std::string(slot_class_name(b, vb))});
      }
    }
  }
  return out;
}

}  // namespace tsdx::sdl
