#include "sdl/embedding.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tsdx::sdl {

std::size_t scenario_vector_dim() {
  std::size_t dim = 0;
  for (std::size_t c : kSlotCardinality) dim += c;
  return dim + (kNumActorTypes - 1);  // background multi-hot (real types only)
}

std::vector<float> scenario_to_vector(const ScenarioDescription& d,
                                      const EmbeddingWeights& w) {
  const SlotLabels labels = to_slot_labels(d);
  const std::array<float, kNumSlots> slot_weights = {
      w.road_layout, w.time_of_day, w.weather,      w.density,
      w.ego_action,  w.actor_type,  w.actor_action, w.actor_position};

  std::vector<float> vec(scenario_vector_dim(), 0.0f);
  std::size_t offset = 0;
  for (std::size_t s = 0; s < kNumSlots; ++s) {
    vec[offset + labels[s]] = slot_weights[s];
    offset += kSlotCardinality[s];
  }
  // Background block: presence (not multiplicity) of each real actor type.
  for (const ActorDescription& a : d.background_actors) {
    if (a.type == ActorType::kNone) continue;
    vec[offset + static_cast<std::size_t>(a.type) - 1] = w.background;
  }

  const float norm = std::sqrt(
      std::inner_product(vec.begin(), vec.end(), vec.begin(), 0.0f));
  if (norm > 0.0f) {
    for (float& v : vec) v /= norm;
  }
  return vec;
}

float cosine_similarity(const std::vector<float>& a,
                        const std::vector<float>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  for (std::size_t i = n; i < a.size(); ++i) na += a[i] * a[i];
  for (std::size_t i = n; i < b.size(); ++i) nb += b[i] * b[i];
  const float denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0.0f ? dot / denom : 0.0f;
}

float scenario_similarity(const ScenarioDescription& a,
                          const ScenarioDescription& b,
                          const EmbeddingWeights& w) {
  return cosine_similarity(scenario_to_vector(a, w), scenario_to_vector(b, w));
}

std::size_t ScenarioIndex::add(std::string id, const ScenarioDescription& d) {
  entries_.push_back(Entry{std::move(id), d, scenario_to_vector(d, weights_)});
  return entries_.size() - 1;
}

std::vector<ScenarioIndex::Hit> ScenarioIndex::query(
    const ScenarioDescription& q, std::size_t k) const {
  const std::vector<float> qv = scenario_to_vector(q, weights_);
  std::vector<std::pair<float, std::size_t>> scored;
  scored.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    scored.emplace_back(cosine_similarity(qv, entries_[i].vec), i);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<Hit> hits;
  const std::size_t n = std::min(k, scored.size());
  hits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    hits.push_back(Hit{entries_[scored[i].second].id, scored[i].first});
  }
  return hits;
}

}  // namespace tsdx::sdl
