// diff.hpp — slot-level comparison of two scenario descriptions.
//
// Used for error analysis (ground truth vs extracted) and for explaining
// retrieval rankings: which slots agree, which differ, and a one-line
// human-readable report.
#pragma once

#include <string>
#include <vector>

#include "sdl/description.hpp"

namespace tsdx::sdl {

struct SlotDifference {
  Slot slot;
  std::string value_a;
  std::string value_b;
};

/// All slots on which `a` and `b` disagree (empty = identical slot labels;
/// background actors are not compared).
std::vector<SlotDifference> diff_descriptions(const ScenarioDescription& a,
                                              const ScenarioDescription& b);

/// Number of agreeing slots (0..kNumSlots).
std::size_t matching_slots(const ScenarioDescription& a,
                           const ScenarioDescription& b);

/// "ego_action: turn_left->cruise; weather: rain->fog" (empty string when
/// identical).
std::string diff_to_string(const std::vector<SlotDifference>& diffs);

}  // namespace tsdx::sdl
