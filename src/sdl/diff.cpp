#include "sdl/diff.hpp"

namespace tsdx::sdl {

std::vector<SlotDifference> diff_descriptions(const ScenarioDescription& a,
                                              const ScenarioDescription& b) {
  const SlotLabels la = to_slot_labels(a);
  const SlotLabels lb = to_slot_labels(b);
  std::vector<SlotDifference> out;
  for (std::size_t s = 0; s < kNumSlots; ++s) {
    if (la[s] == lb[s]) continue;
    const auto slot = static_cast<Slot>(s);
    out.push_back(SlotDifference{slot,
                                 std::string(slot_class_name(slot, la[s])),
                                 std::string(slot_class_name(slot, lb[s]))});
  }
  return out;
}

std::size_t matching_slots(const ScenarioDescription& a,
                           const ScenarioDescription& b) {
  return kNumSlots - diff_descriptions(a, b).size();
}

std::string diff_to_string(const std::vector<SlotDifference>& diffs) {
  std::string out;
  for (const SlotDifference& d : diffs) {
    if (!out.empty()) out += "; ";
    out += std::string(to_string(d.slot)) + ": " + d.value_a + "->" + d.value_b;
  }
  return out;
}

}  // namespace tsdx::sdl
