#include "sdl/json.hpp"

#include <cmath>
#include <cstdio>

namespace tsdx::sdl {

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passthrough
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double d) {
  if (std::rint(d) == d && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", d);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    write_number(out, as_number());
  } else if (is_string()) {
    write_escaped(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out += ',';
      newline_indent(out, indent, depth + 1);
      arr[i].write(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      write_escaped(out, k);
      out += indent > 0 ? ": " : ":";
      v.write(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  write(out, 2, 0);
  return out;
}

// ---- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse(std::string* error) {
    skip_ws();
    auto v = parse_value();
    if (!v) {
      if (error) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error) *error = "trailing characters at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_.empty()) error_ = msg + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return std::nullopt;
      return Json(std::move(s));
    }
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json(nullptr);
    return parse_number();
  }

  std::optional<Json> parse_object() {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      skip_ws();
      auto v = parse_value();
      if (!v) return std::nullopt;
      obj.emplace(std::move(key), std::move(*v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Json(std::move(obj));
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array() {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      skip_ws();
      auto v = parse_value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Json(std::move(arr));
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad hex digit");
              }
            }
            // Encode BMP code point as UTF-8 (surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("bad escape character");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
      return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("malformed number");
      return std::nullopt;
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace tsdx::sdl
