// serialization.hpp — ScenarioDescription <-> JSON.
//
// Canonical wire format:
// {
//   "environment": {"road_layout": "intersection4", "time_of_day": "day",
//                    "weather": "clear", "traffic_density": "sparse"},
//   "ego_action": "turn_left",
//   "salient_actor": {"type": "pedestrian", "action": "cross",
//                      "position": "ahead"},
//   "background_actors": [ {...}, ... ]
// }
#pragma once

#include <optional>
#include <string>

#include "sdl/description.hpp"
#include "sdl/json.hpp"

namespace tsdx::sdl {

Json to_json(const ActorDescription& a);
Json to_json(const EnvironmentDescription& e);
Json to_json(const ScenarioDescription& d);

/// Parse from a Json value; returns nullopt with `error` set on unknown
/// tokens or missing fields. Does NOT run semantic validation — callers
/// decide whether to accept semantically invalid descriptions.
std::optional<ScenarioDescription> description_from_json(
    const Json& j, std::string* error = nullptr);

/// Convenience: serialize to a JSON string / parse from a JSON string.
std::string to_json_string(const ScenarioDescription& d, bool pretty = false);
std::optional<ScenarioDescription> description_from_string(
    std::string_view text, std::string* error = nullptr);

}  // namespace tsdx::sdl
