// json.hpp — a minimal JSON value, writer, and recursive-descent parser.
//
// Deliberately small: exactly what SDL serialization and experiment reports
// need — objects, arrays, strings, doubles, bools, null; UTF-8 passthrough;
// \uXXXX escapes accepted on input for the BMP. No comments, no trailing
// commas (strict RFC 8259 subset).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace tsdx::sdl {

class Json;
using JsonArray = std::vector<Json>;
/// std::map keeps key order deterministic, which keeps golden-file tests and
/// checkpoint diffs stable.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors throw std::bad_variant_access on kind mismatch.
  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Compact serialization (no whitespace).
  std::string dump() const;
  /// Pretty serialization with 2-space indents.
  std::string dump_pretty() const;

  /// Strict parse; returns nullopt with `error` (if given) set to a
  /// position-annotated message on malformed input.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

  bool operator==(const Json&) const = default;

 private:
  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      value_;
};

}  // namespace tsdx::sdl
