// spec.hpp — partial scenario specifications and valid-completion sampling.
//
// Validation engineers think in partial constraints ("a pedestrian crossing
// at night — anywhere, any weather"). A PartialScenarioSpec leaves any slot
// open; `matches` filters descriptions against it, and `sample_matching`
// draws a *semantically valid* completion uniformly from the valid label
// combinations — the scenario-synthesis primitive used to close the coverage
// gaps that sdl::CoverageAnalyzer reports.
#pragma once

#include <optional>
#include <vector>

#include "sdl/description.hpp"
#include "tensor/rng.hpp"

namespace tsdx::sdl {

struct PartialScenarioSpec {
  std::optional<RoadLayout> road_layout;
  std::optional<TimeOfDay> time_of_day;
  std::optional<Weather> weather;
  std::optional<TrafficDensity> density;
  std::optional<EgoAction> ego_action;
  std::optional<ActorType> actor_type;
  std::optional<ActorAction> actor_action;
  std::optional<RelativePosition> actor_position;

  /// Constrained slot count (0 = matches everything).
  std::size_t constraint_count() const;
};

/// Does `d` satisfy every constrained slot of `spec`?
bool matches(const PartialScenarioSpec& spec, const ScenarioDescription& d);
bool matches(const PartialScenarioSpec& spec, const SlotLabels& labels);

/// All semantically valid label combinations satisfying `spec`
/// (empty when the spec is unsatisfiable, e.g. a crossing truck).
std::vector<SlotLabels> valid_completions(const PartialScenarioSpec& spec);

/// Uniformly sample one valid completion; nullopt when unsatisfiable.
std::optional<ScenarioDescription> sample_matching(
    const PartialScenarioSpec& spec, tensor::Rng& rng);

}  // namespace tsdx::sdl
