#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "core/annotations.hpp"
#include "obs/log.hpp"

namespace tsdx::obs::trace {

namespace {

/// kOff/kSampled/kFull plus "unset" (255): set_mode stores eagerly; mode()
/// lazily resolves TSDX_TRACE on first read so the fast path stays one
/// relaxed load.
constexpr std::uint8_t kModeUnset = 255;
std::atomic<std::uint8_t> g_mode{kModeUnset};

Mode env_mode() {
  const char* env = std::getenv("TSDX_TRACE");
  if (env == nullptr) return Mode::kOff;
  const std::string_view value(env);
  if (value == "full") return Mode::kFull;
  if (value == "sampled") return Mode::kSampled;
  if (!value.empty() && value != "off" && value != "0") {
    TSDX_LOG_WARN("trace", "unknown TSDX_TRACE value `", env,
                  "` (want off|sampled|full); tracing stays off");
  }
  return Mode::kOff;
}

std::atomic<std::uint64_t> g_next_trace_id{1};

thread_local Context t_context;

/// Small dense thread ids for the exporter (std::thread::id doesn't print
/// as a stable small integer).
std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// Every span timestamp is relative to this process-wide epoch so exported
/// traces start near t=0.
Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

/// Mutex-guarded ring buffer. Tracing that is ON is allowed measurable (but
/// small) cost; the contract that matters is that OFF costs one relaxed
/// load, which the enabled() check before any of this guarantees. A mutex
/// keeps the buffer exact and ThreadSanitizer-clean under concurrent
/// workers.
struct Ring {
  Mutex mutex{"obs.trace_ring", lockorder::Rank::kTraceRing};
  std::vector<SpanEvent> events TSDX_GUARDED_BY(mutex){
      std::vector<SpanEvent>(kRingCapacity)};
  std::size_t next TSDX_GUARDED_BY(mutex) = 0;   // write cursor
  std::size_t size TSDX_GUARDED_BY(mutex) = 0;   // valid (<= kRingCapacity)
  std::uint64_t dropped TSDX_GUARDED_BY(mutex) = 0;  // since last clear()
};

Ring& ring() {
  static Ring r;
  return r;
}

void push_event(const char* name, std::uint64_t trace_id,
                Clock::time_point start, Clock::time_point end) {
  SpanEvent event;
  event.name = name;
  event.trace_id = trace_id;
  event.tid = this_thread_tid();
  event.start_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(start -
                                                           trace_epoch())
          .count();
  event.duration_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
  Ring& r = ring();
  LockGuard lock(r.mutex);
  if (r.size == kRingCapacity) {
    ++r.dropped;
  } else {
    ++r.size;
  }
  r.events[r.next] = event;
  r.next = (r.next + 1) % kRingCapacity;
}

/// Is a span under `context` recordable right now?
bool recordable(Mode m, const Context& context) {
  switch (m) {
    case Mode::kOff: return false;
    case Mode::kSampled: return context.sampled && context.trace_id != 0;
    case Mode::kFull: return true;
  }
  return false;
}

}  // namespace

Mode mode() {
  std::uint8_t m = g_mode.load(std::memory_order_relaxed);
  if (m == kModeUnset) {
    const Mode resolved = env_mode();
    // Racing first readers resolve the same environment value; last store
    // wins with an identical byte.
    g_mode.store(static_cast<std::uint8_t>(resolved),
                 std::memory_order_relaxed);
    m = static_cast<std::uint8_t>(resolved);
  }
  return static_cast<Mode>(m);
}

void set_mode(Mode m) {
  g_mode.store(static_cast<std::uint8_t>(m), std::memory_order_relaxed);
}

bool enabled() { return mode() != Mode::kOff; }

Context current() { return t_context; }

Context mint() {
  const Mode m = mode();
  if (m == Mode::kOff) return Context{};
  Context context;
  context.trace_id = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  context.sampled =
      m == Mode::kFull || context.trace_id % kSampleEvery == 0;
  return context;
}

ContextGuard::ContextGuard(Context context) : saved_(t_context) {
  t_context = context;
}

ContextGuard::~ContextGuard() { t_context = saved_; }

void record_span(const char* name, Context context, Clock::time_point start,
                 Clock::time_point end) {
  if (!recordable(mode(), context)) return;
  push_event(name, context.trace_id, start, end);
}

SpanGuard::SpanGuard(const char* name) {
  const Mode m = mode();
  if (m == Mode::kOff) return;  // the fast path: one relaxed load
  if (!recordable(m, t_context)) return;
  name_ = name;
  trace_id_ = t_context.trace_id;
  start_ = Clock::now();
}

SpanGuard::~SpanGuard() {
  if (name_ == nullptr) return;
  push_event(name_, trace_id_, start_, Clock::now());
}

std::vector<SpanEvent> snapshot() {
  Ring& r = ring();
  LockGuard lock(r.mutex);
  std::vector<SpanEvent> out;
  out.reserve(r.size);
  const std::size_t oldest = (r.next + kRingCapacity - r.size) % kRingCapacity;
  for (std::size_t i = 0; i < r.size; ++i) {
    out.push_back(r.events[(oldest + i) % kRingCapacity]);
  }
  return out;
}

std::uint64_t dropped() {
  Ring& r = ring();
  LockGuard lock(r.mutex);
  return r.dropped;
}

void clear() {
  Ring& r = ring();
  LockGuard lock(r.mutex);
  r.next = 0;
  r.size = 0;
  r.dropped = 0;
}

std::string to_json() {
  const std::vector<SpanEvent> events = snapshot();
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);  // microseconds with ns resolution
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "  {\"name\": \"" << e.name << "\", \"ph\": \"X\", \"pid\": 1, "
       << "\"tid\": " << e.tid << ", \"ts\": "
       << static_cast<double>(e.start_ns) / 1000.0 << ", \"dur\": "
       << static_cast<double>(e.duration_ns) / 1000.0
       << ", \"args\": {\"trace_id\": " << e.trace_id << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

bool flush_trace(const std::string& path) {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    TSDX_LOG_WARN("trace", "flush_trace: cannot open `", path,
                  "` for writing");
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  if (!ok) {
    TSDX_LOG_WARN("trace", "flush_trace: short write to `", path, "`");
  }
  return ok;
}

}  // namespace tsdx::obs::trace
