// metrics.hpp — tsdx::obs: the process-wide metrics registry.
//
// Three metric kinds, all lock-cheap on the hot path (a relaxed atomic op per
// update; the registry mutex is taken only at registration and snapshot
// time):
//
//   * Counter    — monotone uint64 (requests served, GEMM flops, faults).
//   * Gauge      — signed point-in-time value with a high-watermark helper
//                  (queue depth, circuit-breaker state, pool threads).
//   * Histogram  — fixed-bucket distribution (latency, queue wait). Bucket
//                  bounds are fixed at registration so observation is a
//                  single relaxed increment; quantiles are bucket-resolution
//                  approximations, good enough for dashboards.
//
// Registries are instantiable: `Registry::global()` is the process-wide
// default every layer (kernels, pool, standalone tools) reports into, while
// a component that needs isolated accounting — an InferenceServer whose
// stats are "since construction", a unit test asserting exact counts — can
// own a private one (see ServerConfig::metrics).
//
// For *exact* percentiles over modest sample counts (bench tables, the
// server's end-to-end latency report) use LatencyHistogram below: a raw
// sample store with nearest-rank percentile(), shared by src/serve and
// bench/bench_common.hpp so every latency column in the repo is computed
// identically.
//
// Snapshots export as JSON (`to_json`) and Prometheus text exposition
// (`to_prometheus`); see tools/trace_check.py for the schema the CI job
// validates.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/annotations.hpp"

namespace tsdx::obs {

/// Exact percentile (nearest-rank on a copy; `p` in [0, 100]). Edge cases
/// are part of the contract, pinned by tests/obs_test.cpp: an empty sample
/// set returns 0 (printers need no special-casing), a single sample answers
/// every percentile, p == 0 is the minimum and p == 100 the maximum, and
/// tail percentiles over fewer samples than their rank resolution (p99 of
/// n < 100) resolve to the maximum — never past the end.
double percentile(std::vector<double> samples, double p);

/// Accumulates raw samples (milliseconds by convention) and answers exact
/// distribution queries. Not thread-safe on its own — owners lock around it.
///
/// Storage is bounded: the first kReservoirCapacity samples are kept
/// verbatim (every query below the cap is exact), after which Algorithm R
/// reservoir sampling keeps a uniform subset — with the random draw replaced
/// by a splitmix64 hash of the running count, so two runs observing the same
/// sequence hold bit-identical reservoirs. count()/mean()/min()/max() are
/// running aggregates over *all* samples ever recorded; percentile() answers
/// from the reservoir, with p == 0 / p == 100 pinned to the exact running
/// extremes.
class LatencyHistogram {
 public:
  /// Samples retained before reservoir replacement kicks in.
  static constexpr std::size_t kReservoirCapacity = 4096;

  void record(double ms);

  /// Total samples ever recorded (not the reservoir size).
  std::size_t count() const { return count_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  /// p in [0, 100], e.g. p50/p95/p99 tail latency. Exact while count() <=
  /// kReservoirCapacity; a uniform-reservoir estimate beyond.
  double percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;  ///< the reservoir
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Monotone event count. All operations are relaxed atomics: counters are
/// statistical, not synchronization — readers that need ordering get it from
/// the surrounding protocol (e.g. future.get() in src/serve).
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raise the gauge to `v` if it is below (high-watermark tracking).
  void update_max(std::int64_t v);
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket distribution: counts per upper bound plus a +Inf overflow
/// bucket, a running sum, and an approximate quantile. Bounds are sorted and
/// fixed at construction.
class Histogram {
 public:
  /// A per-bucket exemplar: the most recent observation in that bucket that
  /// carried a trace ID, linking the bucket to a concrete request. trace_id
  /// 0 = the bucket has no exemplar.
  struct Exemplar {
    std::uint64_t trace_id = 0;
    double value = 0.0;
  };

  explicit Histogram(std::vector<double> bounds);

  /// Count `x` into its bucket. A nonzero `exemplar_trace_id` additionally
  /// stamps the bucket's exemplar (latest writer wins; the id/value pair is
  /// two relaxed stores — statistical, like the counts).
  void observe(double x, std::uint64_t exemplar_trace_id = 0);

  std::uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Approximate quantile (`q` in [0, 100]): the upper bound of the bucket
  /// holding the nearest-rank sample (+Inf bucket answers the largest finite
  /// bound). Empty histogram returns 0.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts: bucket_count(i) counts observations <= bounds()[i];
  /// bucket_count(bounds().size()) is the +Inf overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const;
  /// Bucket i's exemplar ({0, 0} when no traced observation landed there).
  Exemplar exemplar(std::size_t i) const;

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::vector<std::atomic<std::uint64_t>> exemplar_ids_;  // parallel to counts_
  std::vector<std::atomic<double>> exemplar_values_;
  std::atomic<double> sum_{0.0};
};

/// Default bucket bounds for millisecond latencies: 0.1 ms to ~26 s,
/// doubling. Shared by serve.latency_ms / serve.queue_wait_ms so the two are
/// directly comparable in an exposition scrape.
const std::vector<double>& default_latency_buckets_ms();

/// Named metric store. Registration is idempotent — the first caller of a
/// name creates the metric, later callers get the same object (registering
/// one name as two different kinds throws ValueError). Returned references
/// are stable for the registry's lifetime.
class Registry {
 public:
  /// The process-wide default registry.
  static Registry& global();

  Counter& counter(const std::string& name) TSDX_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) TSDX_EXCLUDES(mutex_);
  Histogram& histogram(
      const std::string& name,
      const std::vector<double>& bounds = default_latency_buckets_ms())
      TSDX_EXCLUDES(mutex_);

  /// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, buckets: [{le, count}...]}}}.
  std::string to_json() const TSDX_EXCLUDES(mutex_);
  /// Prometheus text exposition ('.' in names becomes '_'; histogram buckets
  /// are cumulative with an +Inf le, plus _sum and _count series).
  std::string to_prometheus() const TSDX_EXCLUDES(mutex_);

 private:
  void check_unique(const std::string& name, const char* kind) const
      TSDX_REQUIRES(mutex_);

  mutable Mutex mutex_{"obs.registry", lockorder::Rank::kRegistry};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      TSDX_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      TSDX_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      TSDX_GUARDED_BY(mutex_);
};

}  // namespace tsdx::obs
