// log.hpp — tsdx::obs structured logging macros.
//
// The serving and observability layers must not scatter raw
// std::cout/std::cerr/fprintf logging through their sources (enforced by
// tools/tsdx_lint.py, rule `raw-log`): a server's stdout belongs to its
// operator, and ad-hoc prints are how stray diagnostics end up interleaved
// with bench tables. Operational diagnostics go through these macros
// instead — one line, one level, one component tag, written atomically to
// stderr:
//
//   TSDX_LOG_WARN("serve", "worker ", index, " died: ", what);
//     -> [tsdx:warn:serve] worker 3 died: ...
//
// This header is the single allowlisted raw-stderr site. Keep it tiny: no
// timestamps (operators have journald/k8s for that), no dynamic levels, no
// sinks — a metric or a span is the right tool for anything high-rate.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace tsdx::obs {

enum class LogLevel { kInfo, kWarn };

namespace log_detail {

template <class... Parts>
void log_line(LogLevel level, const char* component, const Parts&... parts) {
  std::ostringstream os;
  static_cast<void>((os << ... << parts));
  const std::string body = os.str();
  // One fprintf per line so concurrent threads can't interleave fragments.
  std::fprintf(stderr, "[tsdx:%s:%s] %s\n",
               level == LogLevel::kWarn ? "warn" : "info", component,
               body.c_str());
}

}  // namespace log_detail
}  // namespace tsdx::obs

#define TSDX_LOG_INFO(component, ...)                                     \
  ::tsdx::obs::log_detail::log_line(::tsdx::obs::LogLevel::kInfo,         \
                                    component, __VA_ARGS__)
#define TSDX_LOG_WARN(component, ...)                                     \
  ::tsdx::obs::log_detail::log_line(::tsdx::obs::LogLevel::kWarn,         \
                                    component, __VA_ARGS__)
