#include "obs/recorder.hpp"

#include <sstream>

namespace tsdx::obs {

namespace {

constexpr const char* kSegmentAdmission = "obs.segment_ms.admission";
constexpr const char* kSegmentQueue = "obs.segment_ms.queue";
constexpr const char* kSegmentBatchWait = "obs.segment_ms.batch_wait";
constexpr const char* kSegmentExecute = "obs.segment_ms.execute";
constexpr const char* kSegmentRetryBackoff = "obs.segment_ms.retry_backoff";
constexpr const char* kE2e = "obs.e2e_ms";

double ns_to_ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

const char* to_string(Recorder::Kind kind) {
  switch (kind) {
    case Recorder::Kind::kServer: return "server";
    case Recorder::Kind::kRouter: return "router";
  }
  return "?";
}

const char* to_string(Recorder::Outcome outcome) {
  switch (outcome) {
    case Recorder::Outcome::kInFlight: return "in_flight";
    case Recorder::Outcome::kCompleted: return "completed";
    case Recorder::Outcome::kDegraded: return "degraded";
    case Recorder::Outcome::kFailed: return "failed";
    case Recorder::Outcome::kDeadlineExpired: return "deadline_expired";
    case Recorder::Outcome::kShed: return "shed";
    case Recorder::Outcome::kRejected: return "rejected";
    case Recorder::Outcome::kCancelled: return "cancelled";
  }
  return "?";
}

const char* to_string(Recorder::Path path) {
  switch (path) {
    case Recorder::Path::kUnknown: return "unknown";
    case Recorder::Path::kDynamic: return "dynamic";
    case Recorder::Path::kPlan: return "plan";
    case Recorder::Path::kFallback: return "fallback";
  }
  return "?";
}

Recorder::Recorder()
    : records_(kRingCapacity), epoch_(std::chrono::steady_clock::now()) {}

Recorder& Recorder::global() {
  static Recorder recorder;
  return recorder;
}

std::int64_t Recorder::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Recorder::Record* Recorder::slot_for(std::uint64_t handle) {
  if (handle == 0) return nullptr;
  Record& record = records_[handle & (kRingCapacity - 1)];
  // A lapped handle's slot now belongs to a younger record: drop the update.
  return record.id == handle ? &record : nullptr;
}

std::uint64_t Recorder::begin(Kind kind, std::uint64_t trace_id) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::int64_t now = now_ns();
  LockGuard lock(mutex_);
  Record& record = records_[id & (kRingCapacity - 1)];
  record = Record{};
  record.id = id;
  record.kind = kind;
  record.trace_id = trace_id;
  record.submit_ns = now;
  return id;
}

void Recorder::on_admission(std::uint64_t handle, const char* verdict) {
  LockGuard lock(mutex_);
  if (Record* record = slot_for(handle)) record->admission = verdict;
}

void Recorder::on_enqueued(std::uint64_t handle) {
  const std::int64_t now = now_ns();
  LockGuard lock(mutex_);
  if (Record* record = slot_for(handle)) record->enqueue_ns = now;
}

void Recorder::on_dispatch(std::uint64_t handle) {
  const std::int64_t now = now_ns();
  LockGuard lock(mutex_);
  if (Record* record = slot_for(handle)) record->dispatch_ns = now;
}

void Recorder::on_execute(std::uint64_t handle, std::uint64_t batch_id,
                          std::uint32_t batch_size, std::int32_t worker) {
  const std::int64_t now = now_ns();
  LockGuard lock(mutex_);
  Record* record = slot_for(handle);
  if (record == nullptr) return;
  record->execute_ns = now;
  record->batch_id = batch_id;
  record->batch_size = batch_size;
  record->worker = worker;
}

void Recorder::set_path(std::uint64_t handle, Path path) {
  LockGuard lock(mutex_);
  if (Record* record = slot_for(handle)) record->path = path;
}

void Recorder::set_replica(std::uint64_t handle, std::int32_t replica) {
  LockGuard lock(mutex_);
  if (Record* record = slot_for(handle)) record->replica = replica;
}

void Recorder::on_retry(std::uint64_t handle, std::int64_t backoff_ns,
                        bool failover) {
  LockGuard lock(mutex_);
  Record* record = slot_for(handle);
  if (record == nullptr) return;
  ++record->attempts;
  if (failover) ++record->failovers;
  record->backoff_ns += backoff_ns;
}

void Recorder::finish(std::uint64_t handle, Outcome outcome,
                      Registry* registry) {
  const std::int64_t now = now_ns();
  Record copy;
  {
    LockGuard lock(mutex_);
    Record* record = slot_for(handle);
    if (record == nullptr) return;
    record->outcome = outcome;
    record->done_ns = now;
    copy = *record;
  }
  if (registry == nullptr) return;
  const bool terminal_served = outcome == Outcome::kCompleted ||
                               outcome == Outcome::kDegraded ||
                               outcome == Outcome::kFailed;
  if (copy.kind == Kind::kServer && terminal_served) {
    // Segment derivation: a milestone the request never reached contributes
    // a zero-length segment so the per-segment counts stay equal and the
    // sums still add up to e2e.
    const std::int64_t enqueue =
        copy.enqueue_ns != 0 ? copy.enqueue_ns : copy.submit_ns;
    const std::int64_t dispatch =
        copy.dispatch_ns != 0 ? copy.dispatch_ns : enqueue;
    const std::int64_t execute =
        copy.execute_ns != 0 ? copy.execute_ns : dispatch;
    const std::uint64_t ex = copy.trace_id;
    registry->histogram(kSegmentAdmission)
        .observe(ns_to_ms(enqueue - copy.submit_ns), ex);
    registry->histogram(kSegmentQueue).observe(ns_to_ms(dispatch - enqueue),
                                               ex);
    registry->histogram(kSegmentBatchWait)
        .observe(ns_to_ms(execute - dispatch), ex);
    registry->histogram(kSegmentExecute)
        .observe(ns_to_ms(copy.done_ns - execute), ex);
    registry->histogram(kE2e).observe(ns_to_ms(copy.done_ns - copy.submit_ns),
                                      ex);
  } else if (copy.kind == Kind::kRouter && copy.backoff_ns > 0) {
    registry->histogram(kSegmentRetryBackoff)
        .observe(ns_to_ms(copy.backoff_ns), copy.trace_id);
  }
}

std::vector<Recorder::Record> Recorder::snapshot() const {
  std::vector<Record> out;
  LockGuard lock(mutex_);
  const std::uint64_t newest = next_id_.load(std::memory_order_relaxed);
  out.reserve(records_.size());
  // Oldest live id is newest - capacity + 1 (clamped to 1): walk ids in
  // order so the copy comes out oldest-first regardless of ring position.
  const std::uint64_t oldest =
      newest > kRingCapacity ? newest - kRingCapacity + 1 : 1;
  for (std::uint64_t id = oldest; id <= newest; ++id) {
    const Record& record = records_[id & (kRingCapacity - 1)];
    if (record.id == id) out.push_back(record);
  }
  return out;
}

void Recorder::clear() {
  LockGuard lock(mutex_);
  for (Record& record : records_) record = Record{};
}

namespace {

void append_record_json(std::ostringstream& os, const Recorder::Record& r) {
  os << "{\"id\": " << r.id << ", \"trace_id\": " << r.trace_id
     << ", \"kind\": \"" << to_string(r.kind) << "\", \"outcome\": \""
     << to_string(r.outcome) << "\", \"path\": \"" << to_string(r.path)
     << "\"";
  if (r.admission != nullptr) os << ", \"admission\": \"" << r.admission
                                 << "\"";
  os << ", \"batch_id\": " << r.batch_id << ", \"batch_size\": "
     << r.batch_size << ", \"worker\": " << r.worker << ", \"replica\": "
     << r.replica << ", \"attempts\": " << r.attempts << ", \"failovers\": "
     << r.failovers << ", \"submit_ns\": " << r.submit_ns
     << ", \"enqueue_ns\": " << r.enqueue_ns << ", \"dispatch_ns\": "
     << r.dispatch_ns << ", \"execute_ns\": " << r.execute_ns
     << ", \"done_ns\": " << r.done_ns << ", \"backoff_ns\": " << r.backoff_ns
     << "}";
}

}  // namespace

std::string records_json_array(const std::vector<Recorder::Record>& records) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    os << (i == 0 ? "\n  " : ",\n  ");
    append_record_json(os, records[i]);
  }
  os << "\n]";
  return os.str();
}

std::string Recorder::to_json() const {
  return "{\"records\": " + records_json_array(snapshot()) + "}\n";
}

}  // namespace tsdx::obs
