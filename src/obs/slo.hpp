// slo.hpp — tsdx::obs::SloEngine: rolling-window SLO accounting, multi-window
// burn-rate gauges, and anomaly-triggered flight-recorder dumps.
//
// Model (DESIGN.md §17): the serving layers report every terminal request as
// an *event* — good when it completed within the latency objective, bad when
// it failed, expired, or overran the objective. Events land in per-second
// buckets of a fixed ring sized to the slow window, so the engine answers
// "what fraction of the last 60 s / 600 s was bad" in O(window) with zero
// allocation on the hot path.
//
// Burn rate is the standard SRE definition: the observed bad fraction
// divided by the error budget (1 - target). burn_rate == 1 means the budget
// is being spent exactly at the sustainable rate; 14.4 on the fast window is
// the classic page-now threshold for a 99.9% monthly objective. Two windows
// (fast ~1 min, slow ~10 min) separate "spiking right now" from "quietly
// bleeding". The gauges are exported in milli-units (value × 1000, gauges
// are integers): slo.burn_rate_fast, slo.burn_rate_slow, and
// slo.budget_remaining (fraction of the slow window's error budget unspent).
//
// Anomalies: note_anomaly(kind, trace_id) counts slo.anomalies.<kind> and —
// when TSDX_OBS_DUMP_DIR is set — writes a post-mortem JSON dump pairing the
// SLO state with the flight-recorder ring and the span buffer, so the
// offending trace can be read end to end after the fact. Dumps are capped
// per kind (the first few captures carry all the signal; a retry storm must
// not turn into a disk-fill storm).
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "obs/metrics.hpp"

namespace tsdx::obs {

/// Why a dump was triggered. Kinds map 1:1 to the serving layer's distress
/// signals: a request missed its deadline, the circuit breaker tripped, a
/// ticket exhausted its retries/budget, or a plan arena grew at steady state
/// (the compiled hot path started allocating again).
enum class Anomaly : std::uint8_t {
  kDeadlineMiss,
  kCircuitTrip,
  kRetryStorm,
  kArenaGrowth,
};

inline constexpr std::size_t kAnomalyKinds = 4;

const char* to_string(Anomaly anomaly);

struct SloConfig {
  /// A completed request slower than this is a bad event.
  double latency_objective_ms = 250.0;
  /// Availability target the error budget derives from (0.999 -> 0.1%).
  double target = 0.999;
  std::chrono::seconds fast_window{60};
  std::chrono::seconds slow_window{600};
  /// Anomaly dumps written per kind before suppression (reset() re-arms).
  std::size_t max_dumps_per_kind = 8;
};

/// Point-in-time window readings, as snapshot() returns and the dumps embed.
struct SloSnapshot {
  std::uint64_t good_fast = 0;
  std::uint64_t bad_fast = 0;
  std::uint64_t good_slow = 0;
  std::uint64_t bad_slow = 0;
  double burn_rate_fast = 0.0;
  double burn_rate_slow = 0.0;
  double budget_remaining = 1.0;  ///< 1 = untouched, <= 0 = exhausted
};

class SloEngine {
 public:
  using Clock = std::chrono::steady_clock;

  /// `registry` receives the slo.* gauges and counters; defaults to the
  /// process-wide registry.
  explicit SloEngine(SloConfig config = {}, Registry* registry = nullptr);

  /// The process-wide engine the serving layers report into. Its objective
  /// and target come from TSDX_SLO_OBJECTIVE_MS / TSDX_SLO_TARGET when set.
  static SloEngine& global();

  /// One terminal request: `ok` = it resolved successfully (failures and
  /// deadline expiries pass false), `latency_ms` its end-to-end latency.
  /// Good = ok && within the objective. Refreshes the burn-rate gauges.
  void on_event(bool ok, double latency_ms,
                Clock::time_point now = Clock::now()) TSDX_EXCLUDES(mutex_);

  SloSnapshot snapshot(Clock::time_point now = Clock::now()) const
      TSDX_EXCLUDES(mutex_);

  /// Count an anomaly and, when TSDX_OBS_DUMP_DIR is set (re-read on every
  /// call) and the per-kind cap is not exhausted, dump the SLO state, the
  /// flight-recorder ring, and the span buffer to
  /// <dir>/tsdx_obs_dump_<pid>_<seq>_<kind>.json. `trace_id` (0 = unknown)
  /// names the offending request in the dump.
  void note_anomaly(Anomaly kind, std::uint64_t trace_id)
      TSDX_EXCLUDES(mutex_);

  /// Drop all window state and re-arm the dump caps (tests).
  void reset() TSDX_EXCLUDES(mutex_);

  const SloConfig& config() const { return config_; }

 private:
  /// One second's worth of events. `second` is seconds since epoch_; -1
  /// marks a slot that has never been written.
  struct Bucket {
    std::int64_t second = -1;
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
  };

  std::int64_t seconds_since_epoch(Clock::time_point now) const;
  SloSnapshot snapshot_locked(std::int64_t now_sec) const
      TSDX_REQUIRES(mutex_);
  void write_dump_locked(Anomaly kind, std::uint64_t trace_id,
                         const char* dir, std::uint64_t seq)
      TSDX_REQUIRES(mutex_);

  const SloConfig config_;
  Registry* const registry_;
  Gauge& burn_fast_gauge_;
  Gauge& burn_slow_gauge_;
  Gauge& budget_gauge_;
  const Clock::time_point epoch_;

  mutable Mutex mutex_{"obs.slo", lockorder::Rank::kSlo};
  std::vector<Bucket> buckets_ TSDX_GUARDED_BY(mutex_);
  std::array<std::size_t, kAnomalyKinds> dumps_written_ TSDX_GUARDED_BY(
      mutex_){};
  std::uint64_t dump_seq_ TSDX_GUARDED_BY(mutex_) = 0;
};

}  // namespace tsdx::obs
