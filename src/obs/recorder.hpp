// recorder.hpp — tsdx::obs flight recorder: an always-on ring of structured
// per-request records keyed by the span-tracing trace ID.
//
// Spans (trace.hpp) answer "where did time go inside this process" but are
// sampled and name-oriented; aggregate metrics (metrics.hpp) answer "how is
// the fleet doing" but forget individual requests. The recorder fills the
// gap between them: for the last kRingCapacity requests it keeps *one record
// each* carrying the request's full serving story — admission verdict,
// queue-wait, batch id/size, worker, replica, retry/failover counts,
// plan-vs-dynamic execution path, and a per-segment timestamp timeline —
// cheap enough to leave on even with tracing off (TSDX_TRACE=off mints
// trace id 0; the record is still written, it just cannot be joined against
// spans).
//
// Hooks are keyed by an opaque handle returned from begin(). Handles are
// dense, so a slot in the ring is overwritten exactly when its id has been
// lapped; hooks against a lapped (stale) handle are silently dropped — the
// recorder is a diagnostic ring, not a ledger. Handle 0 is the inert
// no-record handle: every hook is a no-op on it, which lets callers thread
// the handle unconditionally.
//
// Segment model (DESIGN.md §17): each record carries nanosecond timestamps
// (relative to the recorder's construction) for submit / enqueue / dispatch
// (picked out of the queue into a batch) / execute (batch extraction began)
// / done, plus accumulated retry backoff for router-level records. finish()
// derives the named segments —
//
//   admission   = enqueue  - submit     (submit-side checks + queue push)
//   queue       = dispatch - enqueue    (waiting in the bounded queue)
//   batch_wait  = execute  - dispatch   (batch window fill + scrub + setup)
//   execute     = done     - execute    (extractor / plan / fallback)
//   retry_backoff                        (router backoff sleeps, accumulated)
//
// — and observes them into obs.segment_ms.* histograms (with the record's
// trace ID as the exemplar) plus obs.e2e_ms for the total, so
// admission + queue + batch_wait + execute ≈ e2e by construction; the
// attribution gate in tools/obs_report.py holds the residue under 5%.
// Server-side records with terminal outcomes completed/failed/degraded feed
// the histograms; expired/shed/rejected/cancelled records keep their
// timeline for dumps but are excluded so obs.e2e_ms stays comparable to
// serve.latency_ms (which only sees dispatched work).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "obs/metrics.hpp"

namespace tsdx::obs {

class Recorder {
 public:
  /// Which hop of the serving stack wrote the record. A routed request has
  /// two records under one trace ID: the router's (admission, retries,
  /// backoff) and the replica server's (queue, batch, execute).
  enum class Kind : std::uint8_t { kServer, kRouter };

  /// Terminal state of the request. kInFlight is the initial value; finish()
  /// is the only writer of the others.
  enum class Outcome : std::uint8_t {
    kInFlight,
    kCompleted,
    kDegraded,
    kFailed,
    kDeadlineExpired,
    kShed,
    kRejected,
    kCancelled,
  };

  /// Which execution path answered the request.
  enum class Path : std::uint8_t { kUnknown, kDynamic, kPlan, kFallback };

  /// One request's flight record. POD-ish by design: snapshot() copies the
  /// ring wholesale.
  struct Record {
    std::uint64_t id = 0;  ///< dense handle; 0 = empty slot
    std::uint64_t trace_id = 0;
    Kind kind = Kind::kServer;
    Outcome outcome = Outcome::kInFlight;
    Path path = Path::kUnknown;
    const char* admission = nullptr;  ///< static verdict string, router only
    std::uint64_t batch_id = 0;       ///< 0 = never batched
    std::uint32_t batch_size = 0;
    std::int32_t worker = -1;
    std::int32_t replica = -1;
    std::uint32_t attempts = 0;   ///< dispatch attempts (router)
    std::uint32_t failovers = 0;  ///< retries that changed replica
    // Timeline: ns since the recorder's epoch; 0 = milestone not reached.
    std::int64_t submit_ns = 0;
    std::int64_t enqueue_ns = 0;
    std::int64_t dispatch_ns = 0;
    std::int64_t execute_ns = 0;
    std::int64_t done_ns = 0;
    std::int64_t backoff_ns = 0;  ///< accumulated retry backoff (router)
  };

  /// Records retained before the ring laps. Power of two so slot selection
  /// is a mask.
  static constexpr std::size_t kRingCapacity = 4096;

  Recorder();

  /// The process-wide recorder every serving layer reports into.
  static Recorder& global();

  /// Open a record; returns its handle (never 0). The milestone clock starts
  /// here (submit_ns).
  std::uint64_t begin(Kind kind, std::uint64_t trace_id)
      TSDX_EXCLUDES(mutex_);

  /// Router: the admission verdict, as the static string from
  /// serve::to_string(AdmitVerdict).
  void on_admission(std::uint64_t handle, const char* verdict)
      TSDX_EXCLUDES(mutex_);
  /// Server: the request entered the bounded queue.
  void on_enqueued(std::uint64_t handle) TSDX_EXCLUDES(mutex_);
  /// Server: the request was picked out of the queue into a forming batch.
  void on_dispatch(std::uint64_t handle) TSDX_EXCLUDES(mutex_);
  /// Server: batch execution is starting; identifies the batch and worker.
  void on_execute(std::uint64_t handle, std::uint64_t batch_id,
                  std::uint32_t batch_size, std::int32_t worker)
      TSDX_EXCLUDES(mutex_);
  /// Server: which execution path produced the answer.
  void set_path(std::uint64_t handle, Path path) TSDX_EXCLUDES(mutex_);
  /// Router: the replica the ticket is (currently) dispatched to.
  void set_replica(std::uint64_t handle, std::int32_t replica)
      TSDX_EXCLUDES(mutex_);
  /// Router: a retry is being scheduled after `backoff_ns` of sleep;
  /// `failover` when it will run on a different replica than the failure.
  void on_retry(std::uint64_t handle, std::int64_t backoff_ns, bool failover)
      TSDX_EXCLUDES(mutex_);

  /// Close the record. For kServer records with outcome
  /// completed/degraded/failed and a non-null registry, derives the segment
  /// timeline into obs.segment_ms.{admission,queue,batch_wait,execute} and
  /// obs.e2e_ms (trace ID attached as the bucket exemplar); kRouter records
  /// contribute obs.segment_ms.retry_backoff when any backoff accumulated.
  void finish(std::uint64_t handle, Outcome outcome,
              Registry* registry = nullptr) TSDX_EXCLUDES(mutex_);

  /// Process-unique batch id (dense, starts at 1) for on_execute.
  std::uint64_t mint_batch_id() {
    return next_batch_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Copy of every live record, oldest first.
  std::vector<Record> snapshot() const TSDX_EXCLUDES(mutex_);
  /// {"records": [...]} — the schema tools/trace_check.py --recorder/--dump
  /// validates.
  std::string to_json() const TSDX_EXCLUDES(mutex_);
  /// Drop all records (tests; the ring otherwise never resets).
  void clear() TSDX_EXCLUDES(mutex_);

  /// Nanoseconds since the recorder's epoch, the record timeline's unit.
  std::int64_t now_ns() const;

 private:
  /// The slot for `handle`, or nullptr when the ring has lapped it.
  Record* slot_for(std::uint64_t handle) TSDX_REQUIRES(mutex_);

  mutable Mutex mutex_{"obs.recorder", lockorder::Rank::kRecorder};
  std::vector<Record> records_ TSDX_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> next_batch_id_{0};
  const std::chrono::steady_clock::time_point epoch_;
};

const char* to_string(Recorder::Kind kind);
const char* to_string(Recorder::Outcome outcome);
const char* to_string(Recorder::Path path);

/// Serialize a record list as a JSON array (no wrapper object); shared by
/// Recorder::to_json and the SLO engine's anomaly dumps so
/// tools/trace_check.py validates one record shape.
std::string records_json_array(const std::vector<Recorder::Record>& records);

}  // namespace tsdx::obs
