#include "obs/slo.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "core/check.hpp"
#include "obs/log.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace tsdx::obs {

namespace {

/// The error budget can never be zero even for a target of 1.0 — burn rate
/// would be undefined; a vanishing budget just makes every bad event scream.
double error_budget(double target) {
  return std::max(1.0 - target, 1e-9);
}

std::int64_t to_milli(double v) {
  return static_cast<std::int64_t>(std::llround(v * 1000.0));
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end == value ? fallback : parsed;
}

/// Records worth embedding in a dump when the trace doesn't select them.
constexpr std::size_t kDumpRecentRecords = 256;
/// Span cap per dump: enough for a full request story, bounded on a busy
/// ring.
constexpr std::size_t kDumpMaxSpans = 1024;

}  // namespace

const char* to_string(Anomaly anomaly) {
  switch (anomaly) {
    case Anomaly::kDeadlineMiss: return "deadline_miss";
    case Anomaly::kCircuitTrip: return "circuit_trip";
    case Anomaly::kRetryStorm: return "retry_storm";
    case Anomaly::kArenaGrowth: return "arena_growth";
  }
  return "?";
}

SloEngine::SloEngine(SloConfig config, Registry* registry)
    : config_(config),
      registry_(registry != nullptr ? registry : &Registry::global()),
      burn_fast_gauge_(registry_->gauge("slo.burn_rate_fast")),
      burn_slow_gauge_(registry_->gauge("slo.burn_rate_slow")),
      budget_gauge_(registry_->gauge("slo.budget_remaining")),
      epoch_(Clock::now()) {
  TSDX_CHECK(config_.fast_window.count() > 0 &&
                 config_.slow_window.count() >= config_.fast_window.count(),
             "SloEngine: windows must satisfy 0 < fast <= slow, got fast=",
             config_.fast_window.count(), "s slow=",
             config_.slow_window.count(), "s");
  buckets_.resize(static_cast<std::size_t>(config_.slow_window.count()));
  budget_gauge_.set(to_milli(1.0));
}

SloEngine& SloEngine::global() {
  static SloEngine* engine = [] {
    SloConfig config;
    config.latency_objective_ms =
        env_double("TSDX_SLO_OBJECTIVE_MS", config.latency_objective_ms);
    config.target = env_double("TSDX_SLO_TARGET", config.target);
    return new SloEngine(config);  // leaked: process-lifetime singleton
  }();
  return *engine;
}

std::int64_t SloEngine::seconds_since_epoch(Clock::time_point now) const {
  const auto delta = now - epoch_;
  if (delta.count() < 0) return 0;
  return std::chrono::duration_cast<std::chrono::seconds>(delta).count();
}

void SloEngine::on_event(bool ok, double latency_ms, Clock::time_point now) {
  const bool good = ok && latency_ms <= config_.latency_objective_ms;
  const std::int64_t sec = seconds_since_epoch(now);
  SloSnapshot snap;
  {
    LockGuard lock(mutex_);
    Bucket& bucket = buckets_[static_cast<std::size_t>(sec) %
                              buckets_.size()];
    if (bucket.second != sec) bucket = Bucket{sec, 0, 0};
    if (good) {
      ++bucket.good;
    } else {
      ++bucket.bad;
    }
    snap = snapshot_locked(sec);
  }
  burn_fast_gauge_.set(to_milli(snap.burn_rate_fast));
  burn_slow_gauge_.set(to_milli(snap.burn_rate_slow));
  budget_gauge_.set(to_milli(snap.budget_remaining));
}

SloSnapshot SloEngine::snapshot_locked(std::int64_t now_sec) const {
  SloSnapshot snap;
  const std::int64_t fast_from = now_sec - config_.fast_window.count();
  const std::int64_t slow_from = now_sec - config_.slow_window.count();
  for (const Bucket& bucket : buckets_) {
    if (bucket.second < 0 || bucket.second <= slow_from ||
        bucket.second > now_sec) {
      continue;
    }
    snap.good_slow += bucket.good;
    snap.bad_slow += bucket.bad;
    if (bucket.second > fast_from) {
      snap.good_fast += bucket.good;
      snap.bad_fast += bucket.bad;
    }
  }
  const double budget = error_budget(config_.target);
  const std::uint64_t total_fast = snap.good_fast + snap.bad_fast;
  const std::uint64_t total_slow = snap.good_slow + snap.bad_slow;
  if (total_fast > 0) {
    snap.burn_rate_fast = static_cast<double>(snap.bad_fast) /
                          static_cast<double>(total_fast) / budget;
  }
  if (total_slow > 0) {
    snap.burn_rate_slow = static_cast<double>(snap.bad_slow) /
                          static_cast<double>(total_slow) / budget;
  }
  snap.budget_remaining = 1.0 - snap.burn_rate_slow;
  return snap;
}

SloSnapshot SloEngine::snapshot(Clock::time_point now) const {
  LockGuard lock(mutex_);
  return snapshot_locked(seconds_since_epoch(now));
}

void SloEngine::note_anomaly(Anomaly kind, std::uint64_t trace_id) {
  registry_->counter(std::string("slo.anomalies.") + to_string(kind)).inc();
  // Re-read the environment every call: tests arm/disarm the dump dir
  // around individual scenarios.
  const char* dir = std::getenv("TSDX_OBS_DUMP_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  LockGuard lock(mutex_);
  const auto idx = static_cast<std::size_t>(kind);
  if (dumps_written_[idx] >= config_.max_dumps_per_kind) return;
  ++dumps_written_[idx];
  write_dump_locked(kind, trace_id, dir, ++dump_seq_);
}

void SloEngine::write_dump_locked(Anomaly kind, std::uint64_t trace_id,
                                  const char* dir, std::uint64_t seq) {
  // Select records: everything on the offending trace, plus the most recent
  // ring tail for surrounding context.
  const std::vector<Recorder::Record> all = Recorder::global().snapshot();
  std::vector<Recorder::Record> picked;
  picked.reserve(std::min(all.size(), kDumpRecentRecords) + 8);
  const std::size_t recent_from =
      all.size() > kDumpRecentRecords ? all.size() - kDumpRecentRecords : 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i >= recent_from || (trace_id != 0 && all[i].trace_id == trace_id)) {
      picked.push_back(all[i]);
    }
  }

  std::ostringstream os;
  os << "{\n  \"anomaly\": \"" << to_string(kind) << "\",\n  \"trace_id\": "
     << trace_id << ",\n  \"slo\": {";
  const SloSnapshot snap = snapshot_locked(seconds_since_epoch(Clock::now()));
  os << "\"good_fast\": " << snap.good_fast << ", \"bad_fast\": "
     << snap.bad_fast << ", \"good_slow\": " << snap.good_slow
     << ", \"bad_slow\": " << snap.bad_slow << ", \"burn_rate_fast\": "
     << snap.burn_rate_fast << ", \"burn_rate_slow\": " << snap.burn_rate_slow
     << ", \"budget_remaining\": " << snap.budget_remaining
     << ", \"latency_objective_ms\": " << config_.latency_objective_ms
     << ", \"target\": " << config_.target << "},\n  \"records\": "
     << records_json_array(picked) << ",\n  \"spans\": [";
  // Spans on the offending trace (all of them, capped), else the freshest
  // tail of the ring when the trace is unknown or tracing was off.
  const std::vector<trace::SpanEvent> spans = trace::snapshot();
  const std::size_t span_tail_from =
      spans.size() > kDumpMaxSpans ? spans.size() - kDumpMaxSpans : 0;
  std::vector<trace::SpanEvent> span_picked;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const bool on_trace = trace_id != 0 && spans[i].trace_id == trace_id;
    const bool recent_tail = trace_id == 0 && i >= span_tail_from;
    if ((on_trace || recent_tail) && span_picked.size() < kDumpMaxSpans) {
      span_picked.push_back(spans[i]);
    }
  }
  for (std::size_t i = 0; i < span_picked.size(); ++i) {
    const trace::SpanEvent& span = span_picked[i];
    os << (i == 0 ? "\n    " : ",\n    ") << "{\"name\": \"" << span.name
       << "\", \"trace_id\": " << span.trace_id << ", \"tid\": " << span.tid
       << ", \"start_ns\": " << span.start_ns << ", \"duration_ns\": "
       << span.duration_ns << "}";
  }
  os << "\n  ]\n}\n";

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; open reports
  std::ostringstream name;
  name << "tsdx_obs_dump_" << ::getpid() << "_" << seq << "_"
       << to_string(kind) << ".json";
  const std::string path =
      (std::filesystem::path(dir) / name.str()).string();
  const std::string body = os.str();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    TSDX_LOG_WARN("obs", "slo: cannot open anomaly dump ", path);
    return;
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  if (written != body.size()) {
    TSDX_LOG_WARN("obs", "slo: short write on anomaly dump ", path);
    return;
  }
  TSDX_LOG_INFO("obs", "slo: wrote ", to_string(kind), " anomaly dump ",
                path);
}

void SloEngine::reset() {
  LockGuard lock(mutex_);
  for (Bucket& bucket : buckets_) bucket = Bucket{};
  dumps_written_.fill(0);
  dump_seq_ = 0;
}

}  // namespace tsdx::obs
