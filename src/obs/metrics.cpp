#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <string_view>

#include "core/check.hpp"

namespace tsdx::obs {

double percentile(std::vector<double> samples, double p) {
  TSDX_CHECK(p >= 0.0 && p <= 100.0, "percentile: p must be in [0,100], got ",
             p);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  // Nearest-rank: smallest sample with at least p% of the mass at or below.
  const double rank =
      std::ceil(p / 100.0 * static_cast<double>(samples.size()));
  const std::size_t idx = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return samples[std::min(idx, samples.size() - 1)];
}

namespace {

/// splitmix64 — the deterministic stand-in for Algorithm R's random draw.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void LatencyHistogram::record(double ms) {
  if (count_ == 0) {
    min_ = max_ = ms;
  } else {
    min_ = std::min(min_, ms);
    max_ = std::max(max_, ms);
  }
  sum_ += ms;
  if (samples_.size() < kReservoirCapacity) {
    samples_.push_back(ms);
  } else {
    // Algorithm R: the (count_+1)-th sample replaces a uniform slot with
    // probability capacity/(count_+1) — here "uniform" is a hash of the
    // running count, so the kept subset is a pure function of the sequence.
    const std::uint64_t j =
        mix64(static_cast<std::uint64_t>(count_)) %
        static_cast<std::uint64_t>(count_ + 1);
    if (j < kReservoirCapacity) samples_[static_cast<std::size_t>(j)] = ms;
  }
  ++count_;
}

double LatencyHistogram::percentile(double p) const {
  TSDX_CHECK(p >= 0.0 && p <= 100.0,
             "LatencyHistogram::percentile: p must be in [0,100], got ", p);
  if (count_ == 0) return 0.0;
  // The running extremes survive reservoir replacement; answer them exactly.
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  return obs::percentile(samples_, p);
}

void Gauge::update_max(std::int64_t v) {
  std::int64_t seen = value_.load(std::memory_order_relaxed);
  while (v > seen &&
         !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      exemplar_ids_(bounds_.size() + 1),
      exemplar_values_(bounds_.size() + 1) {
  TSDX_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
             "Histogram: bucket bounds must be ascending");
}

void Histogram::observe(double x, std::uint64_t exemplar_trace_id) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  if (exemplar_trace_id != 0) {
    exemplar_values_[bucket].store(x, std::memory_order_relaxed);
    exemplar_ids_[bucket].store(exemplar_trace_id, std::memory_order_relaxed);
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  TSDX_CHECK(q >= 0.0 && q <= 100.0, "Histogram::quantile: q must be in "
             "[0,100], got ", q);
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double rank = std::ceil(q / 100.0 * static_cast<double>(n));
  const auto target =
      rank < 1.0 ? std::uint64_t{1} : static_cast<std::uint64_t>(rank);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      // The +Inf bucket has no finite bound; answer the largest one.
      return i < bounds_.size() ? bounds_[i]
                                : (bounds_.empty() ? 0.0 : bounds_.back());
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  TSDX_CHECK(i < counts_.size(), "Histogram::bucket_count: bucket ", i,
             " out of range (", counts_.size(), " buckets)");
  return counts_[i].load(std::memory_order_relaxed);
}

Histogram::Exemplar Histogram::exemplar(std::size_t i) const {
  TSDX_CHECK(i < exemplar_ids_.size(), "Histogram::exemplar: bucket ", i,
             " out of range (", exemplar_ids_.size(), " buckets)");
  Exemplar ex;
  ex.trace_id = exemplar_ids_[i].load(std::memory_order_relaxed);
  ex.value = exemplar_values_[i].load(std::memory_order_relaxed);
  return ex;
}

const std::vector<double>& default_latency_buckets_ms() {
  static const std::vector<double> buckets = [] {
    std::vector<double> b;
    for (double bound = 0.1; bound < 30000.0; bound *= 2.0) b.push_back(bound);
    return b;
  }();
  return buckets;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void Registry::check_unique(const std::string& name, const char* kind) const {
  const std::string_view want(kind);
  const bool taken = (counters_.count(name) != 0 && want != "counter") ||
                     (gauges_.count(name) != 0 && want != "gauge") ||
                     (histograms_.count(name) != 0 && want != "histogram");
  TSDX_CHECK(!taken, "Registry: metric `", name,
             "` already registered as a different kind than ", kind);
}

Counter& Registry::counter(const std::string& name) {
  LockGuard lock(mutex_);
  check_unique(name, "counter");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  LockGuard lock(mutex_);
  check_unique(name, "gauge");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& bounds) {
  LockGuard lock(mutex_);
  check_unique(name, "histogram");
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

namespace {

/// JSON-safe number formatting (no locale, no exponent surprises for the
/// magnitudes metrics carry).
std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

std::string Registry::to_json() const {
  LockGuard lock(mutex_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << g->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << h->count() << ", \"sum\": " << format_double(h->sum())
       << ", \"buckets\": [";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      os << (i == 0 ? "" : ", ") << "{\"le\": "
         << (i < bounds.size() ? format_double(bounds[i])
                               : std::string("\"+Inf\""))
         << ", \"count\": " << h->bucket_count(i) << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string Registry::to_prometheus() const {
  LockGuard lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " counter\n" << p << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " histogram\n";
    const auto& bounds = h->bounds();
    // OpenMetrics exemplars: a traced observation in the bucket is appended
    // as `# {trace_id="<id>"} <value>` so the slowest buckets link straight
    // to a flight-recorder / span trace (validated by trace_check.py
    // --prom).
    const auto append_exemplar = [&](std::size_t i) {
      const Histogram::Exemplar ex = h->exemplar(i);
      if (ex.trace_id != 0) {
        os << " # {trace_id=\"" << ex.trace_id << "\"} "
           << format_double(ex.value);
      }
    };
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += h->bucket_count(i);
      os << p << "_bucket{le=\"" << format_double(bounds[i]) << "\"} "
         << cumulative;
      append_exemplar(i);
      os << "\n";
    }
    cumulative += h->bucket_count(bounds.size());
    os << p << "_bucket{le=\"+Inf\"} " << cumulative;
    append_exemplar(bounds.size());
    os << "\n";
    os << p << "_sum " << format_double(h->sum()) << "\n";
    os << p << "_count " << cumulative << "\n";
  }
  return os.str();
}

}  // namespace tsdx::obs
