// trace.hpp — tsdx::obs::trace: structured span tracing with per-request
// trace IDs and a Chrome-trace-event / Perfetto JSON exporter.
//
// Model (see DESIGN.md §11 "Observability model"):
//
// * A *span* is a named wall-clock interval on one thread. RAII spans
//   (TSDX_TRACE_SPAN("gemm.mm")) cover the enclosing scope; completed spans
//   with explicit endpoints (record_span) cover cross-thread intervals like
//   a request's queue wait. Spans on one thread nest by containment, which
//   is exactly how the Chrome trace viewer / Perfetto renders them.
// * A *trace* is the set of spans sharing one trace ID. IDs are minted at
//   the request boundary (InferenceServer::submit) and propagated by
//   value: the worker adopts the context before dispatching a batch
//   (ContextGuard), and tsdx::par carries the publisher's context onto its
//   pool workers, so kernel spans inside a parallel_for still belong to the
//   request that triggered them.
// * Recording is controlled by TSDX_TRACE=off|sampled|full (read once; a
//   programmatic set_mode wins over the environment):
//     off      nothing is recorded. The only residual cost is one relaxed
//              atomic load per span site — measured as unobservable in
//              bench_k1_kernels (see DESIGN.md §11 overhead contract).
//     sampled  spans are recorded only for sampled traces (1 in
//              kSampleEvery minted IDs); spans with no active trace context
//              are dropped. Always-on production setting.
//     full     every span is recorded, including context-free ones (which
//              carry trace ID 0).
// * Storage is a fixed-capacity ring buffer (kRingCapacity completed
//   spans); when it wraps, the oldest spans are overwritten and dropped()
//   counts them. flush_trace(path) exports the buffer as Chrome trace-event
//   JSON ("traceEvents" of "ph":"X" complete events, microsecond
//   timestamps), loadable directly in https://ui.perfetto.dev.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tsdx::obs::trace {

using Clock = std::chrono::steady_clock;

enum class Mode : std::uint8_t { kOff, kSampled, kFull };

/// Sampled mode records 1 in this many minted trace IDs.
inline constexpr std::uint64_t kSampleEvery = 8;

/// Completed spans the ring buffer holds before overwriting the oldest.
inline constexpr std::size_t kRingCapacity = 1 << 16;

/// Current mode: the last set_mode() value, else TSDX_TRACE from the
/// environment (read once), else kOff.
Mode mode();
void set_mode(Mode mode);

/// Fast-path check: anything to do at span sites at all?
bool enabled();

/// The per-thread trace context spans inherit.
struct Context {
  std::uint64_t trace_id = 0;  ///< 0 = no active trace
  bool sampled = false;        ///< record spans for this trace?
};

/// This thread's active context ({0, false} when none).
Context current();

/// Mint a fresh trace ID and decide its sampling fate under the current
/// mode. Returns an inert context ({0, false}) when tracing is off, so
/// callers can mint unconditionally.
Context mint();

/// RAII adopt/restore of the thread-local context. Workers place one at the
/// top of a dispatch so every span below it belongs to the request's trace.
class ContextGuard {
 public:
  explicit ContextGuard(Context context);
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  Context saved_;
};

/// Record a completed span with explicit endpoints under `context` (used for
/// cross-thread intervals: queue wait, whole-request). No-op when the
/// context isn't recordable under the current mode.
void record_span(const char* name, Context context, Clock::time_point start,
                 Clock::time_point end);

/// RAII span: records [construction, destruction) on this thread under the
/// current context. `name` must be a string literal (stored by pointer).
class SpanGuard {
 public:
  explicit SpanGuard(const char* name);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_ = nullptr;  ///< null = not recording
  std::uint64_t trace_id_ = 0;
  Clock::time_point start_;
};

/// One completed span, as stored in the ring buffer. Timestamps are
/// nanoseconds since the process's trace epoch.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t trace_id = 0;
  std::uint32_t tid = 0;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
};

/// Copy of the buffered spans, oldest first (test/debug surface).
std::vector<SpanEvent> snapshot();

/// Spans overwritten by ring wrap-around since the last clear().
std::uint64_t dropped();

/// Discard all buffered spans and reset dropped().
void clear();

/// The buffered spans as Chrome trace-event JSON.
std::string to_json();

/// Write to_json() to `path`. Returns false (and logs) on I/O failure.
bool flush_trace(const std::string& path);

}  // namespace tsdx::obs::trace

// TSDX_TRACE_SPAN("serve.batch"); — a scope-long RAII span. The variable
// name folds in __LINE__ so multiple spans can share a scope.
#define TSDX_OBS_CONCAT_IMPL(a, b) a##b
#define TSDX_OBS_CONCAT(a, b) TSDX_OBS_CONCAT_IMPL(a, b)
#define TSDX_TRACE_SPAN(name) \
  ::tsdx::obs::trace::SpanGuard TSDX_OBS_CONCAT(tsdx_obs_span_, __LINE__)(name)
