// trace_hook.hpp — tsdx::tensor::trace: the seam the inference plan compiler
// (src/plan) uses to observe one dynamic forward pass as a symbolic op graph.
//
// While a Sink is installed on the current thread, every tensor op that
// understands tracing reports an OpRecord (op kind, input/output nodes,
// attributes) right after computing its result, and make_tensor reports
// every node it creates. The plan tracer cross-references the two streams:
// a node that was created during tracing but never claimed by an OpRecord
// was produced by an op with no trace hook, and the tracer refuses
// (plan::TraceError) as soon as such a node is consumed by a hooked op or
// turns out to be a model output — either way, the forward ran an op the
// compiler does not understand and the caller falls back to the dynamic
// path. (Unclaimed nodes nobody reads are dead values — e.g.
// default-constructed Tensor placeholders — and are tolerated.)
//
// Cost when no sink is installed (always, outside plan compilation): one
// thread-local pointer load per op — the same posture as obs::trace span
// sites. Tracing is a per-thread affair by design: plan compilation runs the
// traced forward on the compiling thread while other threads keep serving.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace tsdx::tensor::trace {

/// Every tensor op the tracer understands. Ops not listed here (conv, pool,
/// losses, dropout-in-training, ...) have no hook: reaching one during a
/// trace surfaces as an unclaimed node, never as a miscompiled plan.
enum class OpKind : std::uint8_t {
  kAdd,
  kMulScalar,
  kGelu,
  kMatmul,
  kMatmulNt,
  kReshape,
  kPermute,
  kSumDim,
  kSoftmax,
  kLogSoftmax,
  kLayerNorm,
  kEmbeddingLookup,
};

/// One traced op: kind + data-flow (by node identity) + attributes. Node
/// pointers are shared, so a record keeps its operands' storage alive for
/// the duration of the trace (the plan compiler reads constants out of
/// them).
struct OpRecord {
  OpKind kind;
  const char* name = nullptr;  ///< static op name, for diagnostics
  std::vector<NodePtr> inputs;
  NodePtr output;
  float scalar = 0.0f;             ///< kMulScalar factor / kLayerNorm eps
  std::size_t dim = 0;             ///< kSumDim reduction axis
  std::vector<std::size_t> perm{};  ///< kPermute axis permutation
};

/// Receiver for the two trace streams. Implemented by plan::Tracer.
class Sink {
 public:
  virtual ~Sink() = default;
  /// An op completed under the trace.
  virtual void on_op(const OpRecord& record) = 0;
  /// A node was created under the trace (leaf or op result). Called before
  /// the matching on_op, if any.
  virtual void on_node(const NodePtr& node) = 0;
};

/// This thread's installed sink (null = not tracing).
Sink* sink();

/// Install `s` (null to stop tracing); returns the previous sink so nested
/// scopes can restore it.
Sink* set_sink(Sink* s);

inline bool active() { return sink() != nullptr; }

/// Forward `record` to the installed sink. Call only when active().
void record(OpRecord record);

/// Report a created node to the installed sink (no-op when inactive; called
/// from make_tensor, so it must stay cheap).
void note_node(const NodePtr& node);

}  // namespace tsdx::tensor::trace
