#include "tensor/tensor.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "core/check.hpp"
#include "tensor/trace_hook.hpp"

namespace tsdx::tensor {

namespace {
thread_local bool g_no_grad = false;
}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_no_grad) { g_no_grad = true; }
NoGradGuard::~NoGradGuard() { g_no_grad = previous_; }
bool NoGradGuard::active() { return g_no_grad; }

Tensor make_tensor(Shape shape, std::vector<float> data, bool requires_grad) {
  TSDX_SHAPE_ASSERT(static_cast<std::int64_t>(data.size()) == numel(shape),
                    "make_tensor: ", data.size(), " values for shape ",
                    to_string(shape));
  auto node = std::make_shared<Node>();
  node->shape = std::move(shape);
  node->data = std::move(data);
  node->requires_grad = requires_grad && !NoGradGuard::active();
  // Report every created node to an installed plan tracer so untraced ops
  // surface as unclaimed nodes instead of miscompiled plans (trace_hook.hpp).
  if (trace::active()) trace::note_node(node);
  return Tensor(std::move(node));
}

bool tape_active(const std::vector<NodePtr>& parents) {
  if (NoGradGuard::active()) return false;
  return std::any_of(parents.begin(), parents.end(),
                     [](const NodePtr& p) { return p && p->requires_grad; });
}

Tensor make_op_result(Shape shape, std::vector<float> data,
                      std::vector<NodePtr> parents,
                      std::function<void(Node&)> bw) {
  const bool record = tape_active(parents);
  Tensor out = make_tensor(std::move(shape), std::move(data), record);
  if (record) {
    out.node()->parents = std::move(parents);
    out.node()->backward = std::move(bw);
  }
  return out;
}

// ---- construction ----------------------------------------------------------

Tensor Tensor::zeros(Shape shape, bool requires_grad) {
  const auto n = static_cast<std::size_t>(::tsdx::tensor::numel(shape));
  return make_tensor(std::move(shape), std::vector<float>(n, 0.0f), requires_grad);
}

Tensor Tensor::ones(Shape shape, bool requires_grad) {
  return full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::full(Shape shape, float value, bool requires_grad) {
  const auto n = static_cast<std::size_t>(::tsdx::tensor::numel(shape));
  return make_tensor(std::move(shape), std::vector<float>(n, value), requires_grad);
}

Tensor Tensor::scalar(float value, bool requires_grad) {
  return make_tensor(Shape{}, std::vector<float>{value}, requires_grad);
}

Tensor Tensor::from_vector(Shape shape, std::vector<float> values,
                           bool requires_grad) {
  TSDX_SHAPE_ASSERT(
      static_cast<std::int64_t>(values.size()) == ::tsdx::tensor::numel(shape),
      "from_vector: ", values.size(), " values for shape ", to_string(shape));
  return make_tensor(std::move(shape), std::move(values), requires_grad);
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev, bool requires_grad) {
  const auto n = static_cast<std::size_t>(::tsdx::tensor::numel(shape));
  std::vector<float> values(n);
  for (auto& v : values) v = static_cast<float>(rng.normal()) * stddev;
  return make_tensor(std::move(shape), std::move(values), requires_grad);
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi,
                            bool requires_grad) {
  const auto n = static_cast<std::size_t>(::tsdx::tensor::numel(shape));
  std::vector<float> values(n);
  for (auto& v : values) v = static_cast<float>(rng.uniform(lo, hi));
  return make_tensor(std::move(shape), std::move(values), requires_grad);
}

// ---- autograd engine -------------------------------------------------------

namespace {

/// Iterative post-order DFS over parent edges; returns nodes in topological
/// order (parents before children), restricted to the subgraph that requires
/// gradients.
std::vector<Node*> topo_order(Node* root) {
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  if (root->requires_grad) stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      Node* parent = top.node->parents[top.next_parent++].get();
      if (parent && parent->requires_grad && !visited.contains(parent)) {
        visited.insert(parent);
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;  // parents precede children
}

}  // namespace

void Tensor::backward() const {
  if (numel() != 1) {
    throw std::logic_error(
        "backward() without seed requires a scalar; got shape " +
        to_string(shape()));
  }
  const float one = 1.0f;
  backward(std::span<const float>(&one, 1));
}

void Tensor::backward(std::span<const float> seed) const {
  if (!node_->requires_grad) {
    throw std::logic_error("backward() on a tensor outside the tape");
  }
  TSDX_SHAPE_ASSERT(static_cast<std::int64_t>(seed.size()) == numel(),
                    "backward: seed of size ", seed.size(),
                    " for tensor with numel ", numel());
  std::vector<Node*> order = topo_order(node_.get());
  // Reset intermediate (non-leaf) gradients so repeated backward() calls on
  // the same graph don't double-count; leaf gradients accumulate, matching
  // the usual gradient-accumulation contract.
  for (Node* n : order) {
    if (n->backward) n->grad.assign(n->data.size(), 0.0f);
  }
  auto& g = node_->ensure_grad();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] += seed[i];
  // Children come after their parents in `order`; walk it from the back so
  // each node's grad is complete before its closure fires.
  for (std::size_t i = order.size(); i-- > 0;) {
    Node* n = order[i];
    if (n->backward) {
      n->ensure_grad();
      n->backward(*n);
    }
  }
}

Tensor Tensor::detach() const {
  return make_tensor(node_->shape, node_->data, /*requires_grad=*/false);
}

}  // namespace tsdx::tensor
