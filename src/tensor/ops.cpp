#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "tensor/kernels/gemm.hpp"
#include "tensor/kernels/parallel_for.hpp"
#include "tensor/trace_hook.hpp"

namespace tsdx::tensor {

namespace {

[[noreturn]] void shape_error(const char* op, const Shape& a, const Shape& b) {
  throw ShapeError(std::string(op) + ": incompatible shapes " + to_string(a) +
                   " and " + to_string(b));
}

/// Layout of a broadcasting binary op: which operand (if any) is the
/// suffix-broadcast "small" one.
enum class Bcast { kSame, kBSmall, kASmall };

Bcast classify(const char* op, const Shape& a, const Shape& b) {
  if (same_shape(a, b)) return Bcast::kSame;
  if (is_suffix_of(b, a)) return Bcast::kBSmall;
  if (is_suffix_of(a, b)) return Bcast::kASmall;
  shape_error(op, a, b);
}

/// Generic broadcasting binary op.
/// fwd(x, y) -> value; dfdx(x, y) and dfdy(x, y) -> partial derivatives.
template <class F, class Dx, class Dy>
Tensor binary_op(const char* name, const Tensor& a, const Tensor& b, F fwd,
                 Dx dfdx, Dy dfdy) {
  const Bcast mode = classify(name, a.shape(), b.shape());
  const Tensor& big = (mode == Bcast::kASmall) ? b : a;
  const Tensor& small = (mode == Bcast::kASmall) ? a : b;
  const std::size_t n = static_cast<std::size_t>(big.numel());
  const std::size_t m = static_cast<std::size_t>(small.numel());

  std::vector<float> out(n);
  const auto av = a.data();
  const auto bv = b.data();
  if (mode == Bcast::kSame) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fwd(av[i], bv[i]);
  } else if (mode == Bcast::kBSmall) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fwd(av[i], bv[i % m]);
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = fwd(av[i % m], bv[i]);
  }

  NodePtr an = a.node();
  NodePtr bn = b.node();
  return make_op_result(
      big.shape(), std::move(out), {an, bn},
      [an, bn, mode, m, dfdx, dfdy](Node& self) {
        const auto& g = self.grad;
        const auto& ax = an->data;
        const auto& bx = bn->data;
        const std::size_t n2 = g.size();
        if (an->requires_grad) {
          auto& ga = an->ensure_grad();
          for (std::size_t i = 0; i < n2; ++i) {
            const std::size_t ia = (mode == Bcast::kASmall) ? i % m : i;
            const std::size_t ib = (mode == Bcast::kBSmall) ? i % m : i;
            ga[ia] += g[i] * dfdx(ax[ia], bx[ib]);
          }
        }
        if (bn->requires_grad) {
          auto& gb = bn->ensure_grad();
          for (std::size_t i = 0; i < n2; ++i) {
            const std::size_t ia = (mode == Bcast::kASmall) ? i % m : i;
            const std::size_t ib = (mode == Bcast::kBSmall) ? i % m : i;
            gb[ib] += g[i] * dfdy(ax[ia], bx[ib]);
          }
        }
      });
}

/// Generic elementwise unary op. dfdx receives (x, y) so ops like tanh can
/// reuse the forward value.
template <class F, class Dx>
Tensor unary_op(const Tensor& a, F fwd, Dx dfdx) {
  const std::size_t n = static_cast<std::size_t>(a.numel());
  std::vector<float> out(n);
  const auto av = a.data();
  for (std::size_t i = 0; i < n; ++i) out[i] = fwd(av[i]);

  NodePtr an = a.node();
  // Capture the forward output for backward closures that want y.
  auto saved = std::make_shared<std::vector<float>>(out);
  return make_op_result(a.shape(), std::move(out), {an},
                        [an, saved, dfdx](Node& self) {
                          if (!an->requires_grad) return;
                          auto& ga = an->ensure_grad();
                          const auto& g = self.grad;
                          const auto& x = an->data;
                          for (std::size_t i = 0; i < g.size(); ++i) {
                            ga[i] += g[i] * dfdx(x[i], (*saved)[i]);
                          }
                        });
}

}  // namespace

// ---- elementwise binary -----------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = binary_op(
      "add", a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
  if (trace::active()) {
    trace::record(
        {trace::OpKind::kAdd, "add", {a.node(), b.node()}, out.node()});
  }
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(
      "sub", a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(
      "mul", a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(
      "div", a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

// ---- scalar -----------------------------------------------------------------

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; });
}

Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out = unary_op(
      a, [s](float x) { return x * s; }, [s](float, float) { return s; });
  if (trace::active()) {
    trace::record(
        {trace::OpKind::kMulScalar, "mul_scalar", {a.node()}, out.node(), s});
  }
  return out;
}

// ---- unary --------------------------------------------------------------------

Tensor neg(const Tensor& a) {
  return unary_op(
      a, [](float x) { return -x; }, [](float, float) { return -1.0f; });
}

Tensor exp(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor log(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor sqrt(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / y; });
}

Tensor relu(const Tensor& a) {
  return unary_op(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor gelu(const Tensor& a) {
  // 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kA = 0.044715f;
  Tensor out = unary_op(
      a,
      [](float x) {
        const float u = kC * (x + kA * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(u));
      },
      [](float x, float) {
        const float u = kC * (x + kA * x * x * x);
        const float t = std::tanh(u);
        const float du = kC * (1.0f + 3.0f * kA * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      });
  if (trace::active()) {
    trace::record({trace::OpKind::kGelu, "gelu", {a.node()}, out.node()});
  }
  return out;
}

Tensor tanh(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor sigmoid(const Tensor& a) {
  return unary_op(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor abs(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::abs(x); },
      [](float x, float) { return x >= 0.0f ? 1.0f : -1.0f; });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  TSDX_CHECK(lo <= hi, "clamp: lo (", lo, ") > hi (", hi, ")");
  return unary_op(
      a, [lo, hi](float x) { return std::min(std::max(x, lo), hi); },
      [lo, hi](float x, float) { return (x >= lo && x <= hi) ? 1.0f : 0.0f; });
}

Tensor pow(const Tensor& a, float exponent) {
  return unary_op(
      a, [exponent](float x) { return std::pow(x, exponent); },
      [exponent](float x, float) {
        return exponent * std::pow(x, exponent - 1.0f);
      });
}

// ---- matmul ---------------------------------------------------------------------
//
// Both products run on the blocked, panel-packed kernels in
// tensor/kernels/gemm.hpp, parallelized over C rows by tsdx::par. A shared
// rhs ([K,N] against [*batch,M,K]) is the common Linear case: the batch
// collapses into one [batch*M, K] x [K, N] product, and its backward
// reduces over the batch *inside* the kernel's ascending-k accumulation —
// deterministic at any thread count, with the packed panels replacing the
// seed's strided inner loops (dA via mm_nt, dB via mm_tn).

namespace {

/// Common shape logic for matmul / matmul_nt. `k_axis_first` says whether
/// b's contraction axis is its second-to-last (matmul: [.., K, N]) or last
/// (matmul_nt: [.., N, K]) axis.
struct MatmulDims {
  std::int64_t batch = 1;
  std::int64_t m = 0, k = 0, n = 0;
  bool shared_rhs = false;
  Shape out_shape;
};

MatmulDims matmul_dims(const char* op, const Shape& as, const Shape& bs,
                       bool k_axis_first) {
  if (as.size() < 2 || bs.size() < 2) shape_error(op, as, bs);
  MatmulDims d;
  d.m = as[as.size() - 2];
  d.k = as[as.size() - 1];
  const std::int64_t bk = k_axis_first ? bs[bs.size() - 2] : bs[bs.size() - 1];
  d.n = k_axis_first ? bs[bs.size() - 1] : bs[bs.size() - 2];
  if (d.k != bk) shape_error(op, as, bs);

  d.shared_rhs = bs.size() == 2;
  if (!d.shared_rhs) {
    // batch dims must match exactly
    if (as.size() != bs.size()) shape_error(op, as, bs);
    for (std::size_t i = 0; i + 2 < as.size(); ++i) {
      if (as[i] != bs[i]) shape_error(op, as, bs);
    }
  }
  for (std::size_t i = 0; i + 2 < as.size(); ++i) d.batch *= as[i];
  d.out_shape.assign(as.begin(), as.end() - 2);
  d.out_shape.push_back(d.m);
  d.out_shape.push_back(d.n);
  return d;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  const MatmulDims d =
      matmul_dims("matmul", a.shape(), b.shape(), /*k_axis_first=*/true);
  const std::int64_t batch = d.batch, m = d.m, k = d.k, n = d.n;
  const bool shared_rhs = d.shared_rhs;

  std::vector<float> out(static_cast<std::size_t>(batch * m * n), 0.0f);
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  if (shared_rhs) {
    // One [batch*m, k] x [k, n] product; each output row depends only on
    // its own input row, so batching preserves per-item bit-identity.
    kernels::mm_nn(batch * m, k, n, ap, bp, out.data());
  } else {
    for (std::int64_t bi = 0; bi < batch; ++bi) {
      kernels::mm_nn(m, k, n, ap + bi * m * k, bp + bi * k * n,
                     out.data() + bi * m * n);
    }
  }

  NodePtr an = a.node();
  NodePtr bn = b.node();
  Tensor result = make_op_result(
      std::move(d.out_shape), std::move(out), {an, bn},
      [an, bn, batch, m, k, n, shared_rhs](Node& self) {
        const float* g = self.grad.data();
        const float* ax = an->data.data();
        const float* bx = bn->data.data();
        if (an->requires_grad) {
          float* ga = an->ensure_grad().data();
          // dA[i,p] += sum_j G[i,j] * B[p,j]  ==  G · Bᵀ  (mm_nt)
          if (shared_rhs) {
            kernels::mm_nt(batch * m, n, k, g, bx, ga);
          } else {
            for (std::int64_t bi = 0; bi < batch; ++bi) {
              kernels::mm_nt(m, n, k, g + bi * m * n, bx + bi * k * n,
                             ga + bi * m * k);
            }
          }
        }
        if (bn->requires_grad) {
          float* gbm = bn->ensure_grad().data();
          // dB[p,j] += sum_i A[i,p] * G[i,j]  ==  Aᵀ · G  (mm_tn); with a
          // shared rhs the batch reduction is the kernel's own ascending-i
          // accumulation over the flattened [batch*m] rows.
          if (shared_rhs) {
            kernels::mm_tn(k, batch * m, n, ax, g, gbm);
          } else {
            for (std::int64_t bi = 0; bi < batch; ++bi) {
              kernels::mm_tn(k, m, n, ax + bi * m * k, g + bi * m * n,
                             gbm + bi * k * n);
            }
          }
        }
      });
  if (trace::active()) {
    trace::record({trace::OpKind::kMatmul, "matmul", {an, bn}, result.node()});
  }
  return result;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  const MatmulDims d =
      matmul_dims("matmul_nt", a.shape(), b.shape(), /*k_axis_first=*/false);
  const std::int64_t batch = d.batch, m = d.m, k = d.k, n = d.n;
  const bool shared_rhs = d.shared_rhs;

  std::vector<float> out(static_cast<std::size_t>(batch * m * n), 0.0f);
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  if (shared_rhs) {
    kernels::mm_nt(batch * m, k, n, ap, bp, out.data());
  } else {
    for (std::int64_t bi = 0; bi < batch; ++bi) {
      kernels::mm_nt(m, k, n, ap + bi * m * k, bp + bi * n * k,
                     out.data() + bi * m * n);
    }
  }

  NodePtr an = a.node();
  NodePtr bn = b.node();
  Tensor result = make_op_result(
      std::move(d.out_shape), std::move(out), {an, bn},
      [an, bn, batch, m, k, n, shared_rhs](Node& self) {
        const float* g = self.grad.data();
        const float* ax = an->data.data();
        const float* bx = bn->data.data();
        if (an->requires_grad) {
          float* ga = an->ensure_grad().data();
          // dA[i,p] += sum_j G[i,j] * B[j,p]  ==  G · B  (mm_nn)
          if (shared_rhs) {
            kernels::mm_nn(batch * m, n, k, g, bx, ga);
          } else {
            for (std::int64_t bi = 0; bi < batch; ++bi) {
              kernels::mm_nn(m, n, k, g + bi * m * n, bx + bi * n * k,
                             ga + bi * m * k);
            }
          }
        }
        if (bn->requires_grad) {
          float* gbm = bn->ensure_grad().data();
          // dB[j,p] += sum_i G[i,j] * A[i,p]  ==  Gᵀ · A  (mm_tn)
          if (shared_rhs) {
            kernels::mm_tn(n, batch * m, k, g, ax, gbm);
          } else {
            for (std::int64_t bi = 0; bi < batch; ++bi) {
              kernels::mm_tn(n, m, k, g + bi * m * n, ax + bi * m * k,
                             gbm + bi * n * k);
            }
          }
        }
      });
  if (trace::active()) {
    trace::record(
        {trace::OpKind::kMatmulNt, "matmul_nt", {an, bn}, result.node()});
  }
  return result;
}

// ---- reductions -------------------------------------------------------------------

Tensor sum_all(const Tensor& a) {
  // Deterministic parallel reduction: fixed-grain partials + a fixed-order
  // pairwise tree (par::tree_sum), bit-identical at any thread count.
  const std::int64_t n = a.numel();
  const double acc =
      par::tree_sum(a.data().data(), n, par::suggest_grain(n, 1));
  NodePtr an = a.node();
  return make_op_result(Shape{}, {static_cast<float>(acc)}, {an},
                        [an](Node& self) {
                          if (!an->requires_grad) return;
                          auto& ga = an->ensure_grad();
                          const float g = self.grad[0];
                          for (auto& v : ga) v += g;
                        });
}

Tensor mean_all(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  return mul_scalar(sum_all(a), inv);
}

namespace {

void reduce_extents(const Shape& s, std::size_t dim, std::int64_t& outer,
                    std::int64_t& d, std::int64_t& inner) {
  outer = 1;
  inner = 1;
  for (std::size_t i = 0; i < dim; ++i) outer *= s[i];
  d = s[dim];
  for (std::size_t i = dim + 1; i < s.size(); ++i) inner *= s[i];
}

}  // namespace

Tensor sum_dim(const Tensor& a, std::size_t dim) {
  TSDX_SHAPE_ASSERT(dim < a.rank(), "sum_dim: dim ", dim,
                    " out of range for ", to_string(a.shape()));
  std::int64_t outer, d, inner;
  reduce_extents(a.shape(), dim, outer, d, inner);
  Shape out_shape;
  for (std::size_t i = 0; i < a.rank(); ++i) {
    if (i != dim) out_shape.push_back(a.shape()[i]);
  }
  std::vector<float> out(static_cast<std::size_t>(outer * inner), 0.0f);
  const auto av = a.data();
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t j = 0; j < d; ++j) {
      const float* src = av.data() + (o * d + j) * inner;
      float* dst = out.data() + o * inner;
      for (std::int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  NodePtr an = a.node();
  Tensor result =
      make_op_result(std::move(out_shape), std::move(out), {an},
                     [an, outer, d, inner](Node& self) {
                       if (!an->requires_grad) return;
                       auto& ga = an->ensure_grad();
                       const auto& g = self.grad;
                       for (std::int64_t o = 0; o < outer; ++o) {
                         for (std::int64_t j = 0; j < d; ++j) {
                           float* dst = ga.data() + (o * d + j) * inner;
                           const float* src = g.data() + o * inner;
                           for (std::int64_t i = 0; i < inner; ++i)
                             dst[i] += src[i];
                         }
                       }
                     });
  if (trace::active()) {
    trace::OpRecord rec{trace::OpKind::kSumDim, "sum_dim", {an},
                        result.node()};
    rec.dim = dim;
    trace::record(std::move(rec));
  }
  return result;
}

Tensor mean_dim(const Tensor& a, std::size_t dim) {
  TSDX_SHAPE_ASSERT(dim < a.rank(), "mean_dim: dim ", dim,
                    " out of range for ", to_string(a.shape()));
  const float inv = 1.0f / static_cast<float>(a.shape()[dim]);
  return mul_scalar(sum_dim(a, dim), inv);
}

Tensor max_dim(const Tensor& a, std::size_t dim) {
  TSDX_SHAPE_ASSERT(dim < a.rank(), "max_dim: dim ", dim,
                    " out of range for ", to_string(a.shape()));
  std::int64_t outer, d, inner;
  reduce_extents(a.shape(), dim, outer, d, inner);
  Shape out_shape;
  for (std::size_t i = 0; i < a.rank(); ++i) {
    if (i != dim) out_shape.push_back(a.shape()[i]);
  }
  std::vector<float> out(static_cast<std::size_t>(outer * inner));
  auto argmax = std::make_shared<std::vector<std::int64_t>>(out.size());
  const auto av = a.data();
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t i = 0; i < inner; ++i) {
      std::int64_t best = (o * d) * inner + i;
      float best_v = av[static_cast<std::size_t>(best)];
      for (std::int64_t j = 1; j < d; ++j) {
        const std::int64_t idx = (o * d + j) * inner + i;
        if (av[static_cast<std::size_t>(idx)] > best_v) {
          best = idx;
          best_v = av[static_cast<std::size_t>(idx)];
        }
      }
      out[static_cast<std::size_t>(o * inner + i)] = best_v;
      (*argmax)[static_cast<std::size_t>(o * inner + i)] = best;
    }
  }
  NodePtr an = a.node();
  return make_op_result(std::move(out_shape), std::move(out), {an},
                        [an, argmax](Node& self) {
                          if (!an->requires_grad) return;
                          auto& ga = an->ensure_grad();
                          const auto& g = self.grad;
                          for (std::size_t i = 0; i < g.size(); ++i) {
                            ga[static_cast<std::size_t>((*argmax)[i])] += g[i];
                          }
                        });
}

// ---- shape ---------------------------------------------------------------------------

Tensor reshape(const Tensor& a, Shape new_shape) {
  // Resolve a single -1 extent.
  std::int64_t known = 1;
  int infer = -1;
  for (std::size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      TSDX_SHAPE_ASSERT(infer == -1, "reshape: multiple -1 dims in ",
                        to_string(new_shape));
      infer = static_cast<int>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer >= 0) {
    TSDX_SHAPE_ASSERT(known != 0 && a.numel() % known == 0,
                      "reshape: cannot infer dim for ", to_string(a.shape()),
                      " -> ", to_string(new_shape));
    new_shape[static_cast<std::size_t>(infer)] = a.numel() / known;
  }
  TSDX_SHAPE_ASSERT(numel(new_shape) == a.numel(), "reshape: numel mismatch ",
                    to_string(a.shape()), " -> ", to_string(new_shape));
  NodePtr an = a.node();
  std::vector<float> out(a.data().begin(), a.data().end());
  Tensor result =
      make_op_result(std::move(new_shape), std::move(out), {an},
                     [an](Node& self) {
                       if (!an->requires_grad) return;
                       auto& ga = an->ensure_grad();
                       for (std::size_t i = 0; i < ga.size(); ++i)
                         ga[i] += self.grad[i];
                     });
  if (trace::active()) {
    trace::record(
        {trace::OpKind::kReshape, "reshape", {an}, result.node()});
  }
  return result;
}

Tensor permute(const Tensor& a, const std::vector<std::size_t>& perm) {
  const std::size_t r = a.rank();
  TSDX_SHAPE_ASSERT(perm.size() == r, "permute: perm of size ", perm.size(),
                    " for rank-", r, " input ", to_string(a.shape()));
  std::vector<bool> seen(r, false);
  for (std::size_t p : perm) {
    TSDX_CHECK(p < r && !seen[p], "permute: invalid permutation for rank-", r,
               " input");
    seen[p] = true;
  }
  Shape out_shape(r);
  for (std::size_t i = 0; i < r; ++i) out_shape[i] = a.shape()[perm[i]];

  const Shape in_strides = row_major_strides(a.shape());
  // stride (in the input) of each output axis
  std::vector<std::int64_t> gather(r);
  for (std::size_t i = 0; i < r; ++i) gather[i] = in_strides[perm[i]];

  const std::size_t n = static_cast<std::size_t>(a.numel());
  std::vector<float> out(n);
  const auto av = a.data();
  // Map output flat index -> input flat index via mixed-radix decode.
  std::vector<std::int64_t> counter(r, 0);
  std::int64_t src = 0;
  for (std::size_t oi = 0; oi < n; ++oi) {
    out[oi] = av[static_cast<std::size_t>(src)];
    // increment mixed-radix counter (last axis fastest)
    for (std::size_t ax = r; ax-- > 0;) {
      ++counter[ax];
      src += gather[ax];
      if (counter[ax] < out_shape[ax]) break;
      src -= gather[ax] * out_shape[ax];
      counter[ax] = 0;
    }
  }

  NodePtr an = a.node();
  Shape out_shape_copy = out_shape;
  Tensor result = make_op_result(
      std::move(out_shape), std::move(out), {an},
      [an, gather, out_shape_copy, r](Node& self) {
        if (!an->requires_grad) return;
        auto& ga = an->ensure_grad();
        const auto& g = self.grad;
        std::vector<std::int64_t> counter(r, 0);
        std::int64_t src = 0;
        for (std::size_t oi = 0; oi < g.size(); ++oi) {
          ga[static_cast<std::size_t>(src)] += g[oi];
          for (std::size_t ax = r; ax-- > 0;) {
            ++counter[ax];
            src += gather[ax];
            if (counter[ax] < out_shape_copy[ax]) break;
            src -= gather[ax] * out_shape_copy[ax];
            counter[ax] = 0;
          }
        }
      });
  if (trace::active()) {
    trace::OpRecord rec{trace::OpKind::kPermute, "permute", {an},
                        result.node()};
    rec.perm = perm;
    trace::record(std::move(rec));
  }
  return result;
}

Tensor transpose_last2(const Tensor& a) {
  TSDX_SHAPE_ASSERT(a.rank() >= 2, "transpose_last2: rank-", a.rank(),
                    " input ", to_string(a.shape()));
  std::vector<std::size_t> perm(a.rank());
  for (std::size_t i = 0; i < a.rank(); ++i) perm[i] = i;
  std::swap(perm[a.rank() - 1], perm[a.rank() - 2]);
  return permute(a, perm);
}

Tensor concat(const std::vector<Tensor>& parts, std::size_t dim) {
  TSDX_CHECK(!parts.empty(), "concat: no parts");
  const Shape& ref = parts[0].shape();
  TSDX_SHAPE_ASSERT(dim < ref.size(), "concat: dim ", dim,
                    " out of range for ", to_string(ref));
  std::int64_t total = 0;
  for (const Tensor& p : parts) {
    if (p.rank() != ref.size()) shape_error("concat", ref, p.shape());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (i != dim && p.shape()[i] != ref[i]) shape_error("concat", ref, p.shape());
    }
    total += p.shape()[dim];
  }
  Shape out_shape = ref;
  out_shape[dim] = total;

  std::int64_t outer = 1, inner = 1;
  for (std::size_t i = 0; i < dim; ++i) outer *= ref[i];
  for (std::size_t i = dim + 1; i < ref.size(); ++i) inner *= ref[i];

  std::vector<float> out(static_cast<std::size_t>(numel(out_shape)));
  std::vector<std::int64_t> offsets;  // start extent of each part along dim
  {
    std::int64_t off = 0;
    for (const Tensor& p : parts) {
      offsets.push_back(off);
      const std::int64_t d = p.shape()[dim];
      const auto pv = p.data();
      for (std::int64_t o = 0; o < outer; ++o) {
        std::copy_n(pv.data() + o * d * inner, d * inner,
                    out.data() + (o * total + off) * inner);
      }
      off += d;
    }
  }

  std::vector<NodePtr> parents;
  std::vector<std::int64_t> dims;
  for (const Tensor& p : parts) {
    parents.push_back(p.node());
    dims.push_back(p.shape()[dim]);
  }
  auto parents_copy = parents;
  return make_op_result(
      std::move(out_shape), std::move(out), std::move(parents),
      [parents_copy, dims, offsets, outer, inner, total](Node& self) {
        const auto& g = self.grad;
        for (std::size_t pi = 0; pi < parents_copy.size(); ++pi) {
          const NodePtr& p = parents_copy[pi];
          if (!p->requires_grad) continue;
          auto& gp = p->ensure_grad();
          const std::int64_t d = dims[pi];
          for (std::int64_t o = 0; o < outer; ++o) {
            const float* src = g.data() + (o * total + offsets[pi]) * inner;
            float* dst = gp.data() + o * d * inner;
            for (std::int64_t i = 0; i < d * inner; ++i) dst[i] += src[i];
          }
        }
      });
}

Tensor slice(const Tensor& a, std::size_t dim, std::int64_t start,
             std::int64_t len) {
  TSDX_SHAPE_ASSERT(dim < a.rank(), "slice: dim ", dim, " out of range for ",
                    to_string(a.shape()));
  const std::int64_t d = a.shape()[dim];
  TSDX_CHECK(start >= 0 && len >= 0 && start + len <= d, "slice: range [",
             start, ", ", start + len, ") exceeds dim ", d);
  std::int64_t outer = 1, inner = 1;
  for (std::size_t i = 0; i < dim; ++i) outer *= a.shape()[i];
  for (std::size_t i = dim + 1; i < a.rank(); ++i) inner *= a.shape()[i];

  Shape out_shape = a.shape();
  out_shape[dim] = len;
  std::vector<float> out(static_cast<std::size_t>(outer * len * inner));
  const auto av = a.data();
  for (std::int64_t o = 0; o < outer; ++o) {
    std::copy_n(av.data() + (o * d + start) * inner, len * inner,
                out.data() + o * len * inner);
  }
  NodePtr an = a.node();
  return make_op_result(std::move(out_shape), std::move(out), {an},
                        [an, outer, inner, d, start, len](Node& self) {
                          if (!an->requires_grad) return;
                          auto& ga = an->ensure_grad();
                          const auto& g = self.grad;
                          for (std::int64_t o = 0; o < outer; ++o) {
                            const float* src = g.data() + o * len * inner;
                            float* dst = ga.data() + (o * d + start) * inner;
                            for (std::int64_t i = 0; i < len * inner; ++i)
                              dst[i] += src[i];
                          }
                        });
}

Tensor stack(const std::vector<Tensor>& parts) {
  TSDX_CHECK(!parts.empty(), "stack: no parts");
  const Shape& ref = parts[0].shape();
  std::vector<Tensor> reshaped;
  reshaped.reserve(parts.size());
  for (const Tensor& p : parts) {
    if (p.shape() != ref) shape_error("stack", ref, p.shape());
    Shape unsqueezed = ref;
    unsqueezed.insert(unsqueezed.begin(), 1);
    reshaped.push_back(reshape(p, unsqueezed));
  }
  return concat(reshaped, 0);
}

Tensor flip(const Tensor& a, std::size_t dim) {
  TSDX_SHAPE_ASSERT(dim < a.rank(), "flip: dim ", dim, " out of range for ",
                    to_string(a.shape()));
  std::int64_t outer, d, inner;
  reduce_extents(a.shape(), dim, outer, d, inner);
  std::vector<float> out(static_cast<std::size_t>(a.numel()));
  const auto av = a.data();
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t j = 0; j < d; ++j) {
      const float* src = av.data() + (o * d + j) * inner;
      float* dst = out.data() + (o * d + (d - 1 - j)) * inner;
      std::copy_n(src, inner, dst);
    }
  }
  NodePtr an = a.node();
  return make_op_result(a.shape(), std::move(out), {an},
                        [an, outer, d, inner](Node& self) {
                          if (!an->requires_grad) return;
                          auto& ga = an->ensure_grad();
                          const auto& g = self.grad;
                          for (std::int64_t o = 0; o < outer; ++o) {
                            for (std::int64_t j = 0; j < d; ++j) {
                              const float* src =
                                  g.data() + (o * d + (d - 1 - j)) * inner;
                              float* dst = ga.data() + (o * d + j) * inner;
                              for (std::int64_t i = 0; i < inner; ++i)
                                dst[i] += src[i];
                            }
                          }
                        });
}

// ---- softmax family ---------------------------------------------------------------

Tensor softmax_lastdim(const Tensor& a) {
  TSDX_SHAPE_ASSERT(a.rank() >= 1, "softmax: scalar input");
  const std::int64_t d = a.shape().back();
  const std::int64_t rows = a.numel() / d;
  std::vector<float> out(static_cast<std::size_t>(a.numel()));
  const auto av = a.data();
  // Rows are independent: partition them across the intra-op pool (chunk
  // boundaries depend on the shape only, so results are thread-count
  // invariant).
  const std::int64_t grain = par::suggest_grain(rows, d);
  par::parallel_for(rows, grain, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* x = av.data() + r * d;
      float* y = out.data() + r * d;
      float mx = x[0];
      for (std::int64_t i = 1; i < d; ++i) mx = std::max(mx, x[i]);
      float sum = 0.0f;
      for (std::int64_t i = 0; i < d; ++i) {
        y[i] = std::exp(x[i] - mx);
        sum += y[i];
      }
      const float inv = 1.0f / sum;
      for (std::int64_t i = 0; i < d; ++i) y[i] *= inv;
    }
  });
  NodePtr an = a.node();
  auto saved = std::make_shared<std::vector<float>>(out);
  Tensor result = make_op_result(
      a.shape(), std::move(out), {an}, [an, saved, rows, d, grain](Node& self) {
        if (!an->requires_grad) return;
        auto& ga = an->ensure_grad();
        const auto& g = self.grad;
        // dx = y * (g - sum_j g_j y_j)
        par::parallel_for(rows, grain, [&](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t r = r0; r < r1; ++r) {
            const float* y = saved->data() + r * d;
            const float* gr = g.data() + r * d;
            float dot = 0.0f;
            for (std::int64_t i = 0; i < d; ++i) dot += gr[i] * y[i];
            float* dst = ga.data() + r * d;
            for (std::int64_t i = 0; i < d; ++i) dst[i] += y[i] * (gr[i] - dot);
          }
        });
      });
  if (trace::active()) {
    trace::record(
        {trace::OpKind::kSoftmax, "softmax_lastdim", {an}, result.node()});
  }
  return result;
}

Tensor log_softmax_lastdim(const Tensor& a) {
  TSDX_SHAPE_ASSERT(a.rank() >= 1, "log_softmax: scalar input");
  const std::int64_t d = a.shape().back();
  const std::int64_t rows = a.numel() / d;
  std::vector<float> out(static_cast<std::size_t>(a.numel()));
  const auto av = a.data();
  const std::int64_t grain = par::suggest_grain(rows, d);
  par::parallel_for(rows, grain, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* x = av.data() + r * d;
      float* y = out.data() + r * d;
      float mx = x[0];
      for (std::int64_t i = 1; i < d; ++i) mx = std::max(mx, x[i]);
      float sum = 0.0f;
      for (std::int64_t i = 0; i < d; ++i) sum += std::exp(x[i] - mx);
      const float lse = mx + std::log(sum);
      for (std::int64_t i = 0; i < d; ++i) y[i] = x[i] - lse;
    }
  });
  NodePtr an = a.node();
  auto saved = std::make_shared<std::vector<float>>(out);
  Tensor result = make_op_result(
      a.shape(), std::move(out), {an}, [an, saved, rows, d, grain](Node& self) {
        if (!an->requires_grad) return;
        auto& ga = an->ensure_grad();
        const auto& g = self.grad;
        // dx = g - exp(y) * sum_j g_j
        par::parallel_for(rows, grain, [&](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t r = r0; r < r1; ++r) {
            const float* y = saved->data() + r * d;
            const float* gr = g.data() + r * d;
            float gsum = 0.0f;
            for (std::int64_t i = 0; i < d; ++i) gsum += gr[i];
            float* dst = ga.data() + r * d;
            for (std::int64_t i = 0; i < d; ++i)
              dst[i] += gr[i] - std::exp(y[i]) * gsum;
          }
        });
      });
  if (trace::active()) {
    trace::record({trace::OpKind::kLogSoftmax, "log_softmax_lastdim", {an},
                   result.node()});
  }
  return result;
}

std::vector<std::int64_t> argmax_lastdim(const Tensor& a) {
  TSDX_SHAPE_ASSERT(a.rank() >= 1 && a.shape().back() > 0,
                    "argmax_lastdim: need a non-empty last dim, got ",
                    to_string(a.shape()));
  const std::int64_t d = a.shape().back();
  const std::int64_t rows = a.numel() / d;
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  const auto av = a.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* x = av.data() + r * d;
    std::int64_t best = 0;
    for (std::int64_t i = 1; i < d; ++i) {
      if (x[i] > x[best]) best = i;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

}  // namespace tsdx::tensor
