// rng.hpp — deterministic pseudo-random number generation.
//
// All randomness in tsdx (weight init, data sampling, dropout, scenario
// generation) flows through an explicitly seeded Rng passed by reference;
// there is no global generator, so every experiment is reproducible from
// its seed alone.
#pragma once

#include <cmath>
#include <cstdint>

namespace tsdx::tensor {

/// SplitMix64-based generator: tiny state, excellent statistical quality for
/// simulation/initialization purposes, and trivially portable (no libc rand).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64 step).
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box–Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-12) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child generator (for parallel-safe substreams).
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

 private:
  std::uint64_t state_;
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace tsdx::tensor
