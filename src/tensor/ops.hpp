// ops.hpp — differentiable operations on Tensor.
//
// Broadcasting rule (deliberately minimal): a binary op accepts operands of
// identical shape, or one operand whose shape is a *suffix* of the other's
// (e.g. bias [D] against activations [B, T, D]). The gradient of the smaller
// operand is the sum over the broadcast leading dimensions. This covers every
// pattern used by the models in this repo while keeping backward passes easy
// to verify by numerical grad-check.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace tsdx::tensor {

// ---- elementwise binary (broadcasting as documented above) -----------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return div(a, b); }

// ---- scalar ----------------------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// ---- unary ------------------------------------------------------------------
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor relu(const Tensor& a);
/// tanh-approximation GELU (the form used by ViT/BERT implementations).
Tensor gelu(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor sigmoid(const Tensor& a);

Tensor abs(const Tensor& a);
/// Elementwise clamp to [lo, hi]; gradient is 1 inside the interval, 0 outside.
Tensor clamp(const Tensor& a, float lo, float hi);
/// Elementwise power with constant exponent (a must be > 0 for non-integer p).
Tensor pow(const Tensor& a, float exponent);

// ---- matmul ------------------------------------------------------------------
/// Batched matrix product.
///   a: [*batch, M, K]   b: [K, N]            -> [*batch, M, N]   (shared rhs)
///   a: [*batch, M, K]   b: [*batch, K, N]    -> [*batch, M, N]
/// Plain [M,K] x [K,N] is the zero-batch case.
Tensor matmul(const Tensor& a, const Tensor& b);
/// Batched product against a transposed rhs: a · bᵀ without materializing
/// the transpose (used for attention scores Q·Kᵀ).
///   a: [*batch, M, K]   b: [N, K]            -> [*batch, M, N]  (shared rhs)
///   a: [*batch, M, K]   b: [*batch, N, K]    -> [*batch, M, N]
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// ---- reductions ---------------------------------------------------------------
Tensor sum_all(const Tensor& a);   ///< -> scalar
Tensor mean_all(const Tensor& a);  ///< -> scalar
/// Reduce a single axis (removing it), e.g. mean over tokens: [B,T,D] -> [B,D].
Tensor sum_dim(const Tensor& a, std::size_t dim);
Tensor mean_dim(const Tensor& a, std::size_t dim);
/// Max over a single axis (removing it); gradient flows to the argmax only.
Tensor max_dim(const Tensor& a, std::size_t dim);

// ---- shape ---------------------------------------------------------------------
/// Contiguous copy with a new shape; numel must match. -1 in at most one slot
/// infers that extent.
Tensor reshape(const Tensor& a, Shape new_shape);
/// General axis permutation: out[i0,..] = in[perm applied]. perm is a
/// permutation of 0..rank-1; out dim d has extent in.shape[perm[d]].
Tensor permute(const Tensor& a, const std::vector<std::size_t>& perm);
/// Swap the last two axes (matrix transpose, batched).
Tensor transpose_last2(const Tensor& a);
/// Concatenate along `dim`; all other extents must match.
Tensor concat(const std::vector<Tensor>& parts, std::size_t dim);
/// Take `len` extents starting at `start` along `dim`.
Tensor slice(const Tensor& a, std::size_t dim, std::int64_t start,
             std::int64_t len);
/// Stack equal-shaped tensors along a new leading axis: k x [s...] -> [k, s...].
Tensor stack(const std::vector<Tensor>& parts);
/// Reverse the order of elements along `dim` (e.g. horizontal image flip).
Tensor flip(const Tensor& a, std::size_t dim);

// ---- softmax family (last dim) -------------------------------------------------
Tensor softmax_lastdim(const Tensor& a);
Tensor log_softmax_lastdim(const Tensor& a);

// ---- non-differentiable utilities ----------------------------------------------
/// Index of the max element along the last dim; shape [prefix...] flattened.
std::vector<std::int64_t> argmax_lastdim(const Tensor& a);

}  // namespace tsdx::tensor
