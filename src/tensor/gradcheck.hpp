// gradcheck.hpp — numerical gradient verification.
//
// Central-difference check used throughout tests/: every fused backward pass
// in this library is validated against finite differences on random inputs.
#pragma once

#include <functional>
#include <string>

#include "tensor/tensor.hpp"

namespace tsdx::tensor {

struct GradCheckResult {
  bool ok = true;
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  std::string detail;  ///< description of the worst mismatch, for gtest output
};

/// Compare analytic gradients of `fn(inputs) -> scalar` against central
/// differences, perturbing every element of every input.
///
/// Inputs must have requires_grad=true. Tolerance is on the hybrid error
/// |a - n| / max(1, |a|, |n|), appropriate for float32 forward math.
GradCheckResult grad_check(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double eps = 1e-3, double tol = 2e-2);

}  // namespace tsdx::tensor
