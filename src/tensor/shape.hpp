// shape.hpp — shape & stride helpers for dense row-major tensors.
//
// A Shape is a small vector of extents. All tsdx tensors are contiguous
// row-major; strides are always derived, never stored.
#pragma once

#include <cassert>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace tsdx::tensor {

using Shape = std::vector<std::int64_t>;

/// Number of elements described by a shape. The empty shape is a scalar (1).
inline std::int64_t numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    assert(d >= 0 && "negative extent");
    n *= d;
  }
  return n;
}

/// Row-major strides for a shape (in elements, not bytes).
inline Shape row_major_strides(const Shape& shape) {
  Shape strides(shape.size());
  std::int64_t acc = 1;
  for (std::size_t i = shape.size(); i-- > 0;) {
    strides[i] = acc;
    acc *= shape[i];
  }
  return strides;
}

/// "[2, 3, 4]" — for error messages and debugging.
inline std::string to_string(const Shape& shape) {
  std::string s = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

inline bool same_shape(const Shape& a, const Shape& b) { return a == b; }

/// True when `small` equals the trailing dims of `big` (suffix broadcast),
/// e.g. a bias of shape [D] against activations of shape [B, T, D].
inline bool is_suffix_of(const Shape& small, const Shape& big) {
  if (small.size() > big.size()) return false;
  const std::size_t off = big.size() - small.size();
  for (std::size_t i = 0; i < small.size(); ++i) {
    if (small[i] != big[off + i]) return false;
  }
  return true;
}

}  // namespace tsdx::tensor
