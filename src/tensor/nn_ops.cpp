#include "tensor/nn_ops.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/check.hpp"
#include "tensor/kernels/gemm.hpp"
#include "tensor/kernels/parallel_for.hpp"
#include "tensor/trace_hook.hpp"

namespace tsdx::tensor {

namespace {

// Both convolutions lower to im2col + GEMM. The 2d variant is the 3d one
// with a degenerate time axis (t = kt = ot = 1, stride_t = 1, pad_t = 0).
// Column r = ((ic*kt + kz)*kh + ky)*kw + kx of the [ck, opix] col matrix
// matches the flattened weight layout [cout, ck], so the GEMM accumulates
// taps in the same ascending (ic, kz, ky, kx) order as the direct loops.

/// Gather one [cin, t, h, w] image into col[ck, opix]; padding taps become 0.
void im2col(const float* in, std::int64_t cin, std::int64_t t, std::int64_t h,
            std::int64_t w, std::int64_t kt, std::int64_t kh, std::int64_t kw,
            std::int64_t ot, std::int64_t oh, std::int64_t ow,
            std::int64_t stride_t, std::int64_t stride_s, std::int64_t pad_t,
            std::int64_t pad_s, float* col) {
  const std::int64_t ck = cin * kt * kh * kw;
  const std::int64_t opix = ot * oh * ow;
  par::parallel_for(
      ck, par::suggest_grain(ck, opix), [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const std::int64_t kx = r % kw;
          const std::int64_t ky = (r / kw) % kh;
          const std::int64_t kz = (r / (kw * kh)) % kt;
          const std::int64_t ic = r / (kw * kh * kt);
          const float* vol = in + ic * t * h * w;
          float* dst = col + r * opix;
          for (std::int64_t z = 0; z < ot; ++z) {
            const std::int64_t iz = z * stride_t + kz - pad_t;
            for (std::int64_t y = 0; y < oh; ++y) {
              const std::int64_t iy = y * stride_s + ky - pad_s;
              for (std::int64_t x = 0; x < ow; ++x) {
                const std::int64_t ix = x * stride_s + kx - pad_s;
                const bool inb = iz >= 0 && iz < t && iy >= 0 && iy < h &&
                                 ix >= 0 && ix < w;
                dst[(z * oh + y) * ow + x] =
                    inb ? vol[(iz * h + iy) * w + ix] : 0.0f;
              }
            }
          }
        }
      });
}

/// Transpose of im2col: scatter-add dcol[ck, opix] into the input gradient.
/// Parallel over channels — channel ic's columns land only in its own input
/// volume, so chunks write disjoint memory.
void col2im(const float* dcol, std::int64_t cin, std::int64_t t,
            std::int64_t h, std::int64_t w, std::int64_t kt, std::int64_t kh,
            std::int64_t kw, std::int64_t ot, std::int64_t oh, std::int64_t ow,
            std::int64_t stride_t, std::int64_t stride_s, std::int64_t pad_t,
            std::int64_t pad_s, float* gin) {
  const std::int64_t opix = ot * oh * ow;
  par::parallel_for(
      cin, par::suggest_grain(cin, kt * kh * kw * opix),
      [&](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t ic = c0; ic < c1; ++ic) {
          float* vol = gin + ic * t * h * w;
          for (std::int64_t kz = 0; kz < kt; ++kz) {
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t r = ((ic * kt + kz) * kh + ky) * kw + kx;
                const float* src = dcol + r * opix;
                for (std::int64_t z = 0; z < ot; ++z) {
                  const std::int64_t iz = z * stride_t + kz - pad_t;
                  if (iz < 0 || iz >= t) continue;
                  for (std::int64_t y = 0; y < oh; ++y) {
                    const std::int64_t iy = y * stride_s + ky - pad_s;
                    if (iy < 0 || iy >= h) continue;
                    for (std::int64_t x = 0; x < ow; ++x) {
                      const std::int64_t ix = x * stride_s + kx - pad_s;
                      if (ix < 0 || ix >= w) continue;
                      vol[(iz * h + iy) * w + ix] +=
                          src[(z * oh + y) * ow + x];
                    }
                  }
                }
              }
            }
          }
        }
      });
}

}  // namespace

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  TSDX_SHAPE_ASSERT(x.rank() >= 1, "layer_norm: scalar input");
  const std::int64_t d = x.shape().back();
  TSDX_SHAPE_ASSERT(gamma.shape() == Shape{d} && beta.shape() == Shape{d},
                    "layer_norm: gamma ", to_string(gamma.shape()),
                    " / beta ", to_string(beta.shape()), " must be [", d, "]");
  const std::int64_t rows = x.numel() / d;
  std::vector<float> out(static_cast<std::size_t>(x.numel()));
  // Saved for backward: normalized values and 1/std per row.
  auto xhat = std::make_shared<std::vector<float>>(out.size());
  auto inv_std = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(rows));

  const auto xv = x.data();
  const auto gv = gamma.data();
  const auto bv = beta.data();
  const std::int64_t grain = par::suggest_grain(rows, d);
  par::parallel_for(rows, grain, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* xr = xv.data() + r * d;
      float mean = 0.0f;
      for (std::int64_t i = 0; i < d; ++i) mean += xr[i];
      mean /= static_cast<float>(d);
      float var = 0.0f;
      for (std::int64_t i = 0; i < d; ++i) {
        const float c = xr[i] - mean;
        var += c * c;
      }
      var /= static_cast<float>(d);
      const float istd = 1.0f / std::sqrt(var + eps);
      (*inv_std)[static_cast<std::size_t>(r)] = istd;
      float* xh = xhat->data() + r * d;
      float* yr = out.data() + r * d;
      for (std::int64_t i = 0; i < d; ++i) {
        xh[i] = (xr[i] - mean) * istd;
        yr[i] = xh[i] * gv[i] + bv[i];
      }
    }
  });

  NodePtr xn = x.node();
  NodePtr gn = gamma.node();
  NodePtr bn = beta.node();
  Tensor result = make_op_result(
      x.shape(), std::move(out), {xn, gn, bn},
      [xn, gn, bn, xhat, inv_std, rows, d, grain](Node& self) {
        const auto& g = self.grad;
        const auto& gv2 = gn->data;
        if (bn->requires_grad) {
          auto& gb = bn->ensure_grad();
          for (std::int64_t r = 0; r < rows; ++r) {
            const float* gr = g.data() + r * d;
            for (std::int64_t i = 0; i < d; ++i) gb[i] += gr[i];
          }
        }
        if (gn->requires_grad) {
          auto& gg = gn->ensure_grad();
          for (std::int64_t r = 0; r < rows; ++r) {
            const float* gr = g.data() + r * d;
            const float* xh = xhat->data() + r * d;
            for (std::int64_t i = 0; i < d; ++i) gg[i] += gr[i] * xh[i];
          }
        }
        if (xn->requires_grad) {
          auto& gx = xn->ensure_grad();
          // dx = istd * (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat));
          // rows are independent, so the forward grain partitions them too.
          par::parallel_for(rows, grain, [&](std::int64_t r0, std::int64_t r1) {
            for (std::int64_t r = r0; r < r1; ++r) {
              const float* gr = g.data() + r * d;
              const float* xh = xhat->data() + r * d;
              const float istd = (*inv_std)[static_cast<std::size_t>(r)];
              float m1 = 0.0f, m2 = 0.0f;
              for (std::int64_t i = 0; i < d; ++i) {
                const float dxh = gr[i] * gv2[i];
                m1 += dxh;
                m2 += dxh * xh[i];
              }
              m1 /= static_cast<float>(d);
              m2 /= static_cast<float>(d);
              float* dst = gx.data() + r * d;
              for (std::int64_t i = 0; i < d; ++i) {
                const float dxh = gr[i] * gv2[i];
                dst[i] += istd * (dxh - m1 - xh[i] * m2);
              }
            }
          });
        }
      });
  if (trace::active()) {
    trace::OpRecord rec{trace::OpKind::kLayerNorm, "layer_norm", {xn, gn, bn},
                        result.node()};
    rec.scalar = eps;
    trace::record(std::move(rec));
  }
  return result;
}

Tensor cross_entropy_logits(const Tensor& logits,
                            const std::vector<std::int64_t>& targets) {
  TSDX_SHAPE_ASSERT(logits.rank() == 2, "cross_entropy: logits must be [B, C], got ",
                    to_string(logits.shape()));
  const std::int64_t b = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  TSDX_SHAPE_ASSERT(static_cast<std::int64_t>(targets.size()) == b,
                    "cross_entropy: ", targets.size(), " targets for batch ", b);
  // Forward: mean of -log softmax at the target index; save the softmax for
  // backward.
  auto probs = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(b * c));
  const auto lv = logits.data();
  double loss = 0.0;
  for (std::int64_t r = 0; r < b; ++r) {
    const std::int64_t t = targets[static_cast<std::size_t>(r)];
    TSDX_CHECK(t >= 0 && t < c, "cross_entropy: target ", t,
               " out of range [0, ", c, ")");
    const float* x = lv.data() + r * c;
    float mx = x[0];
    for (std::int64_t i = 1; i < c; ++i) mx = std::max(mx, x[i]);
    float sum = 0.0f;
    float* p = probs->data() + r * c;
    for (std::int64_t i = 0; i < c; ++i) {
      p[i] = std::exp(x[i] - mx);
      sum += p[i];
    }
    const float inv = 1.0f / sum;
    for (std::int64_t i = 0; i < c; ++i) p[i] *= inv;
    loss -= std::log(std::max(p[t], 1e-12f));
  }
  loss /= static_cast<double>(b);

  NodePtr ln = logits.node();
  auto tgt = std::make_shared<std::vector<std::int64_t>>(targets);
  return make_op_result(
      Shape{}, {static_cast<float>(loss)}, {ln},
      [ln, probs, tgt, b, c](Node& self) {
        if (!ln->requires_grad) return;
        auto& gl = ln->ensure_grad();
        const float scale = self.grad[0] / static_cast<float>(b);
        for (std::int64_t r = 0; r < b; ++r) {
          const float* p = probs->data() + r * c;
          float* dst = gl.data() + r * c;
          const std::int64_t t = (*tgt)[static_cast<std::size_t>(r)];
          for (std::int64_t i = 0; i < c; ++i) {
            dst[i] += scale * (p[i] - (i == t ? 1.0f : 0.0f));
          }
        }
      });
}

Tensor embedding_lookup(const Tensor& weight,
                        const std::vector<std::int64_t>& indices) {
  TSDX_SHAPE_ASSERT(weight.rank() == 2, "embedding: weight must be [V, D], got ",
                    to_string(weight.shape()));
  const std::int64_t v = weight.dim(0);
  const std::int64_t d = weight.dim(1);
  const std::int64_t n = static_cast<std::int64_t>(indices.size());
  std::vector<float> out(static_cast<std::size_t>(n * d));
  const auto wv = weight.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t idx = indices[static_cast<std::size_t>(i)];
    TSDX_CHECK(idx >= 0 && idx < v, "embedding: index ", idx,
               " out of range [0, ", v, ")");
    std::copy_n(wv.data() + idx * d, d, out.data() + i * d);
  }
  NodePtr wn = weight.node();
  auto idxs = std::make_shared<std::vector<std::int64_t>>(indices);
  Tensor result =
      make_op_result(Shape{n, d}, std::move(out), {wn},
                     [wn, idxs, d](Node& self) {
                       if (!wn->requires_grad) return;
                       auto& gw = wn->ensure_grad();
                       const auto& g = self.grad;
                       for (std::size_t i = 0; i < idxs->size(); ++i) {
                         const std::int64_t idx = (*idxs)[i];
                         const float* src =
                             g.data() + static_cast<std::int64_t>(i) * d;
                         float* dst = gw.data() + idx * d;
                         for (std::int64_t j = 0; j < d; ++j) dst[j] += src[j];
                       }
                     });
  if (trace::active()) {
    // The index list is an op attribute, not a tensor input: the compiled
    // plan re-runs the same gather, so it only needs the weight node. The
    // result is constant when the weight is (positional-index lookups).
    trace::record({trace::OpKind::kEmbeddingLookup, "embedding_lookup", {wn},
                   result.node()});
  }
  return result;
}

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              std::int64_t stride, std::int64_t pad) {
  TSDX_SHAPE_ASSERT(input.rank() == 4 && weight.rank() == 4,
                    "conv2d: input [B,C,H,W], weight [O,C,KH,KW], got ",
                    to_string(input.shape()), " and ",
                    to_string(weight.shape()));
  const std::int64_t b = input.dim(0), cin = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t cout = weight.dim(0), kh = weight.dim(2),
                     kw = weight.dim(3);
  TSDX_SHAPE_ASSERT(weight.dim(1) == cin, "conv2d: weight has ", weight.dim(1),
                    " input channels, input has ", cin);
  TSDX_SHAPE_ASSERT(bias.shape() == Shape{cout}, "conv2d: bias must be [",
                    cout, "], got ", to_string(bias.shape()));
  TSDX_CHECK(stride >= 1, "conv2d: stride must be >= 1, got ", stride);
  TSDX_CHECK(pad >= 0, "conv2d: pad must be >= 0, got ", pad);
  const std::int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - kw) / stride + 1;
  TSDX_SHAPE_ASSERT(oh > 0 && ow > 0, "conv2d: empty output for input ",
                    to_string(input.shape()), " and kernel ",
                    to_string(weight.shape()));

  const std::int64_t ck = cin * kh * kw;
  const std::int64_t opix = oh * ow;
  std::vector<float> out(static_cast<std::size_t>(b * cout * opix));
  const float* in = input.data().data();
  const float* wt = weight.data().data();
  const float* bs = bias.data().data();

  // out[n] = bias ⊕ W[cout, ck] · col[ck, opix]: pre-fill each output channel
  // with its bias so the GEMM's accumulation starts from it, exactly like the
  // direct loop's `acc = bs[oc]`.
  std::vector<float> col(static_cast<std::size_t>(ck * opix));
  for (std::int64_t n = 0; n < b; ++n) {
    im2col(in + n * cin * h * w, cin, 1, h, w, 1, kh, kw, 1, oh, ow, 1, stride,
           0, pad, col.data());
    float* outn = out.data() + n * cout * opix;
    for (std::int64_t oc = 0; oc < cout; ++oc) {
      std::fill_n(outn + oc * opix, opix, bs[oc]);
    }
    kernels::mm_nn(cout, ck, opix, wt, col.data(), outn);
  }

  NodePtr in_n = input.node();
  NodePtr wt_n = weight.node();
  NodePtr bs_n = bias.node();
  return make_op_result(
      Shape{b, cout, oh, ow}, std::move(out), {in_n, wt_n, bs_n},
      [in_n, wt_n, bs_n, b, cin, h, w, cout, kh, kw, oh, ow, stride,
       pad](Node& self) {
        const std::int64_t ck = cin * kh * kw;
        const std::int64_t opix = oh * ow;
        const float* g = self.grad.data();
        const float* in2 = in_n->data.data();
        const float* wt2 = wt_n->data.data();
        float* gin = in_n->requires_grad ? in_n->ensure_grad().data() : nullptr;
        float* gwt = wt_n->requires_grad ? wt_n->ensure_grad().data() : nullptr;
        float* gbs = bs_n->requires_grad ? bs_n->ensure_grad().data() : nullptr;

        std::vector<float> col;
        if (gwt) col.resize(static_cast<std::size_t>(ck * opix));
        std::vector<float> dcol;
        if (gin) dcol.resize(static_cast<std::size_t>(ck * opix));
        for (std::int64_t n = 0; n < b; ++n) {
          const float* gn = g + n * cout * opix;
          if (gbs) {
            for (std::int64_t oc = 0; oc < cout; ++oc) {
              const float* row = gn + oc * opix;
              for (std::int64_t j = 0; j < opix; ++j) gbs[oc] += row[j];
            }
          }
          if (gwt) {
            // dW[cout, ck] += G[cout, opix] · colᵀ
            im2col(in2 + n * cin * h * w, cin, 1, h, w, 1, kh, kw, 1, oh, ow,
                   1, stride, 0, pad, col.data());
            kernels::mm_nt(cout, opix, ck, gn, col.data(), gwt);
          }
          if (gin) {
            // dcol[ck, opix] = Wᵀ · G, scattered back through col2im.
            std::fill(dcol.begin(), dcol.end(), 0.0f);
            kernels::mm_tn(ck, cout, opix, wt2, gn, dcol.data());
            col2im(dcol.data(), cin, 1, h, w, 1, kh, kw, 1, oh, ow, 1, stride,
                   0, pad, gin + n * cin * h * w);
          }
        }
      });
}

Tensor conv3d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              std::int64_t stride_t, std::int64_t stride_s, std::int64_t pad_t,
              std::int64_t pad_s) {
  TSDX_SHAPE_ASSERT(input.rank() == 5 && weight.rank() == 5,
                    "conv3d: input [B,C,T,H,W], weight [O,C,KT,KH,KW], got ",
                    to_string(input.shape()), " and ",
                    to_string(weight.shape()));
  const std::int64_t b = input.dim(0), cin = input.dim(1), t = input.dim(2),
                     h = input.dim(3), w = input.dim(4);
  const std::int64_t cout = weight.dim(0), kt = weight.dim(2),
                     kh = weight.dim(3), kw = weight.dim(4);
  TSDX_SHAPE_ASSERT(weight.dim(1) == cin, "conv3d: weight has ", weight.dim(1),
                    " input channels, input has ", cin);
  TSDX_SHAPE_ASSERT(bias.shape() == Shape{cout}, "conv3d: bias must be [",
                    cout, "], got ", to_string(bias.shape()));
  TSDX_CHECK(stride_t >= 1 && stride_s >= 1,
             "conv3d: strides must be >= 1, got ", stride_t, " and ", stride_s);
  TSDX_CHECK(pad_t >= 0 && pad_s >= 0, "conv3d: pads must be >= 0, got ",
             pad_t, " and ", pad_s);
  const std::int64_t ot = (t + 2 * pad_t - kt) / stride_t + 1;
  const std::int64_t oh = (h + 2 * pad_s - kh) / stride_s + 1;
  const std::int64_t ow = (w + 2 * pad_s - kw) / stride_s + 1;
  TSDX_SHAPE_ASSERT(ot > 0 && oh > 0 && ow > 0,
                    "conv3d: empty output for input ", to_string(input.shape()),
                    " and kernel ", to_string(weight.shape()));

  const std::int64_t ck = cin * kt * kh * kw;
  const std::int64_t opix = ot * oh * ow;
  std::vector<float> out(static_cast<std::size_t>(b * cout * opix));
  const float* in = input.data().data();
  const float* wt = weight.data().data();
  const float* bs = bias.data().data();

  std::vector<float> col(static_cast<std::size_t>(ck * opix));
  for (std::int64_t n = 0; n < b; ++n) {
    im2col(in + n * cin * t * h * w, cin, t, h, w, kt, kh, kw, ot, oh, ow,
           stride_t, stride_s, pad_t, pad_s, col.data());
    float* outn = out.data() + n * cout * opix;
    for (std::int64_t oc = 0; oc < cout; ++oc) {
      std::fill_n(outn + oc * opix, opix, bs[oc]);
    }
    kernels::mm_nn(cout, ck, opix, wt, col.data(), outn);
  }

  NodePtr in_n = input.node();
  NodePtr wt_n = weight.node();
  NodePtr bs_n = bias.node();
  return make_op_result(
      Shape{b, cout, ot, oh, ow}, std::move(out), {in_n, wt_n, bs_n},
      [in_n, wt_n, bs_n, b, cin, t, h, w, cout, kt, kh, kw, ot, oh, ow,
       stride_t, stride_s, pad_t, pad_s](Node& self) {
        const std::int64_t ck = cin * kt * kh * kw;
        const std::int64_t opix = ot * oh * ow;
        const float* g = self.grad.data();
        const float* in2 = in_n->data.data();
        const float* wt2 = wt_n->data.data();
        float* gin = in_n->requires_grad ? in_n->ensure_grad().data() : nullptr;
        float* gwt = wt_n->requires_grad ? wt_n->ensure_grad().data() : nullptr;
        float* gbs = bs_n->requires_grad ? bs_n->ensure_grad().data() : nullptr;

        std::vector<float> col;
        if (gwt) col.resize(static_cast<std::size_t>(ck * opix));
        std::vector<float> dcol;
        if (gin) dcol.resize(static_cast<std::size_t>(ck * opix));
        for (std::int64_t n = 0; n < b; ++n) {
          const float* gn = g + n * cout * opix;
          if (gbs) {
            for (std::int64_t oc = 0; oc < cout; ++oc) {
              const float* row = gn + oc * opix;
              for (std::int64_t j = 0; j < opix; ++j) gbs[oc] += row[j];
            }
          }
          if (gwt) {
            im2col(in2 + n * cin * t * h * w, cin, t, h, w, kt, kh, kw, ot, oh,
                   ow, stride_t, stride_s, pad_t, pad_s, col.data());
            kernels::mm_nt(cout, opix, ck, gn, col.data(), gwt);
          }
          if (gin) {
            std::fill(dcol.begin(), dcol.end(), 0.0f);
            kernels::mm_tn(ck, cout, opix, wt2, gn, dcol.data());
            col2im(dcol.data(), cin, t, h, w, kt, kh, kw, ot, oh, ow, stride_t,
                   stride_s, pad_t, pad_s, gin + n * cin * t * h * w);
          }
        }
      });
}

Tensor max_pool2d(const Tensor& input, std::int64_t k, std::int64_t stride) {
  TSDX_SHAPE_ASSERT(input.rank() == 4, "max_pool2d: input must be [B,C,H,W], got ",
                    to_string(input.shape()));
  TSDX_CHECK(k >= 1 && stride >= 0, "max_pool2d: bad window k=", k,
             " stride=", stride);
  if (stride == 0) stride = k;
  const std::int64_t b = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = (h - k) / stride + 1;
  const std::int64_t ow = (w - k) / stride + 1;
  TSDX_SHAPE_ASSERT(oh > 0 && ow > 0 && k <= h && k <= w,
                    "max_pool2d: window ", k, " does not fit input ",
                    to_string(input.shape()));

  std::vector<float> out(static_cast<std::size_t>(b * c * oh * ow));
  auto argmax = std::make_shared<std::vector<std::int64_t>>(out.size());
  const float* in = input.data().data();
  std::size_t oi = 0;
  for (std::int64_t n = 0; n < b; ++n) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = in + ((n * c + ch) * h) * w;
      const std::int64_t plane_off = ((n * c + ch) * h) * w;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x, ++oi) {
          float best = plane[(y * stride) * w + (x * stride)];
          std::int64_t besti = plane_off + (y * stride) * w + (x * stride);
          for (std::int64_t ky = 0; ky < k; ++ky) {
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t iy = y * stride + ky;
              const std::int64_t ix = x * stride + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                besti = plane_off + iy * w + ix;
              }
            }
          }
          out[oi] = best;
          (*argmax)[oi] = besti;
        }
      }
    }
  }
  NodePtr in_n = input.node();
  return make_op_result(Shape{b, c, oh, ow}, std::move(out), {in_n},
                        [in_n, argmax](Node& self) {
                          if (!in_n->requires_grad) return;
                          auto& gi = in_n->ensure_grad();
                          const auto& g = self.grad;
                          for (std::size_t i = 0; i < g.size(); ++i) {
                            gi[static_cast<std::size_t>((*argmax)[i])] += g[i];
                          }
                        });
}

Tensor dropout(const Tensor& x, float p, Rng& rng) {
  TSDX_CHECK(p >= 0.0f && p < 1.0f, "dropout: p must be in [0, 1), got ", p);
  if (p == 0.0f) return x;
  const float scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(x.numel()));
  for (auto& m : *mask) m = rng.bernoulli(p) ? 0.0f : scale;

  std::vector<float> out(mask->size());
  const auto xv = x.data();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = xv[i] * (*mask)[i];

  NodePtr xn = x.node();
  return make_op_result(x.shape(), std::move(out), {xn},
                        [xn, mask](Node& self) {
                          if (!xn->requires_grad) return;
                          auto& gx = xn->ensure_grad();
                          const auto& g = self.grad;
                          for (std::size_t i = 0; i < g.size(); ++i) {
                            gx[i] += g[i] * (*mask)[i];
                          }
                        });
}

}  // namespace tsdx::tensor
