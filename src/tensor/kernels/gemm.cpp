#include "tensor/kernels/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/kernels/parallel_for.hpp"

namespace tsdx::tensor::kernels {

namespace {

/// Registry handles resolved once per process. mm() bumps these once per
/// call (not per row/chunk), so the relaxed adds amortize over the 2*m*k*n
/// flops they describe.
struct GemmMetrics {
  obs::Counter& calls;
  obs::Counter& flops;
  obs::Counter& direct_path;  ///< both operands read in place (no packing)
  obs::Counter& packed_path;  ///< at least one operand packed into panels
};

GemmMetrics& gemm_metrics() {
  static GemmMetrics metrics = [] {
    obs::Registry& r = obs::Registry::global();
    return GemmMetrics{r.counter("gemm.calls"), r.counter("gemm.flops"),
                       r.counter("gemm.direct_path"),
                       r.counter("gemm.packed_path")};
  }();
  return metrics;
}

// Blocking parameters. kMR is the micro-kernel height (C rows held hot);
// kKC x kNC is the packed op(B) panel, sized to sit in L1/L2 comfortably
// (256 * 128 floats = 128 KiB worst case, typically far smaller).
constexpr std::int64_t kMR = 4;
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 128;

/// Pack op(B)[pc:pc+kc, jc:jc+nc] into a contiguous [kc, nc] panel.
void pack_b(Trans tb, const float* b, std::int64_t ldb, std::int64_t pc,
            std::int64_t jc, std::int64_t kc, std::int64_t nc, float* panel) {
  if (tb == Trans::kN) {
    // b stored [k, n]: each panel row is a contiguous slice of a B row.
    for (std::int64_t p = 0; p < kc; ++p) {
      std::memcpy(panel + p * nc, b + (pc + p) * ldb + jc,
                  static_cast<std::size_t>(nc) * sizeof(float));
    }
  } else {
    // b stored [n, k]: gather the transpose so the micro kernel still walks
    // unit stride.
    for (std::int64_t p = 0; p < kc; ++p) {
      float* dst = panel + p * nc;
      for (std::int64_t j = 0; j < nc; ++j) {
        dst[j] = b[(jc + j) * ldb + (pc + p)];
      }
    }
  }
}

/// Pack op(A)[r0:r1, pc:pc+kc] into a contiguous [r1-r0, kc] panel.
void pack_a(Trans ta, const float* a, std::int64_t lda, std::int64_t r0,
            std::int64_t r1, std::int64_t pc, std::int64_t kc, float* panel) {
  if (ta == Trans::kN) {
    for (std::int64_t i = r0; i < r1; ++i) {
      std::memcpy(panel + (i - r0) * kc, a + i * lda + pc,
                  static_cast<std::size_t>(kc) * sizeof(float));
    }
  } else {
    // a stored [k, m]: gather the transpose row-wise.
    for (std::int64_t i = r0; i < r1; ++i) {
      float* dst = panel + (i - r0) * kc;
      for (std::int64_t p = 0; p < kc; ++p) {
        dst[p] = a[(pc + p) * lda + i];
      }
    }
  }
}

/// C rows [r0, r1) of the full product, using packed panels. Accumulation
/// per C element runs in ascending k order: pc panels ascend, p within a
/// panel ascends, and each step is a single multiply-add into the C row.
void mm_rows(Trans ta, Trans tb, std::int64_t r0, std::int64_t r1,
             std::int64_t k, std::int64_t n, const float* a, std::int64_t lda,
             const float* b, std::int64_t ldb, float* c) {
  const std::int64_t kc_max = std::min(kKC, k);
  const std::int64_t nc_max = std::min(kNC, n);
  // When a single panel spans the whole operand and it is already stored in
  // the panel's layout (kN), packing would be a byte-for-byte copy: read the
  // source directly instead. The extractor's per-layer GEMMs (k <= 256,
  // n <= 128) all take this path; packing still kicks in for transposed
  // operands and for shapes that genuinely need cache blocking.
  const bool a_direct = (ta == Trans::kN) && kc_max == k;
  const bool b_direct = (tb == Trans::kN) && nc_max == n;
  std::vector<float> apack, bpack;
  if (!a_direct) apack.resize(static_cast<std::size_t>((r1 - r0) * kc_max));
  if (!b_direct) bpack.resize(static_cast<std::size_t>(kc_max * nc_max));

  for (std::int64_t pc = 0; pc < k; pc += kKC) {
    const std::int64_t kc = std::min(kKC, k - pc);
    const float* apanel;  // rows r0..r1 of op(A)[:, pc:pc+kc], row stride kc
    if (a_direct) {
      apanel = a + r0 * lda;  // lda == k == kc
    } else {
      pack_a(ta, a, lda, r0, r1, pc, kc, apack.data());
      apanel = apack.data();
    }
    for (std::int64_t jc = 0; jc < n; jc += kNC) {
      const std::int64_t nc = std::min(kNC, n - jc);
      const float* bpanel;  // op(B)[pc:pc+kc, jc:jc+nc], row stride nc
      if (b_direct) {
        bpanel = b + pc * ldb;  // ldb == n == nc
      } else {
        pack_b(tb, b, ldb, pc, jc, kc, nc, bpack.data());
        bpanel = bpack.data();
      }

      for (std::int64_t i0 = r0; i0 < r1; i0 += kMR) {
        const std::int64_t mr = std::min(kMR, r1 - i0);
        const float* arow = apanel + (i0 - r0) * kc;
        if (mr == kMR) {
          float* __restrict__ c0 = c + (i0 + 0) * n + jc;
          float* __restrict__ c1 = c + (i0 + 1) * n + jc;
          float* __restrict__ c2 = c + (i0 + 2) * n + jc;
          float* __restrict__ c3 = c + (i0 + 3) * n + jc;
          for (std::int64_t p = 0; p < kc; ++p) {
            const float* __restrict__ bp = bpanel + p * nc;
            const float x0 = arow[p];
            const float x1 = arow[kc + p];
            const float x2 = arow[2 * kc + p];
            const float x3 = arow[3 * kc + p];
            for (std::int64_t j = 0; j < nc; ++j) {
              c0[j] += x0 * bp[j];
              c1[j] += x1 * bp[j];
              c2[j] += x2 * bp[j];
              c3[j] += x3 * bp[j];
            }
          }
        } else {
          for (std::int64_t r = 0; r < mr; ++r) {
            float* __restrict__ crow = c + (i0 + r) * n + jc;
            for (std::int64_t p = 0; p < kc; ++p) {
              const float* __restrict__ bp = bpanel + p * nc;
              const float x = arow[r * kc + p];
              for (std::int64_t j = 0; j < nc; ++j) crow[j] += x * bp[j];
            }
          }
        }
      }
    }
  }
}

}  // namespace

std::int64_t row_grain(std::int64_t m, std::int64_t k, std::int64_t n) {
  // Target ~128k flops per chunk so chunk dispatch overhead stays invisible,
  // growing in micro-kernel multiples. Depends on the shape only.
  constexpr std::int64_t kTargetFlops = 131072;
  const std::int64_t per_row = std::max<std::int64_t>(1, 2 * k * n);
  std::int64_t grain = kMR;
  while (grain < m && grain * per_row < kTargetFlops) grain *= 2;
  return grain;
}

void mm(Trans ta, Trans tb, std::int64_t m, std::int64_t k, std::int64_t n,
        const float* a, const float* b, float* c) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  TSDX_TRACE_SPAN("gemm.mm");
  GemmMetrics& metrics = gemm_metrics();
  metrics.calls.inc();
  metrics.flops.inc(static_cast<std::uint64_t>(2 * m * k * n));
  // Mirrors the a_direct/b_direct decision in mm_rows: both operands fit one
  // kN panel means the pack buffers are never touched.
  const bool direct = ta == Trans::kN && tb == Trans::kN && k <= kKC && n <= kNC;
  (direct ? metrics.direct_path : metrics.packed_path).inc();
  const std::int64_t lda = (ta == Trans::kN) ? k : m;
  const std::int64_t ldb = (tb == Trans::kN) ? n : k;
  par::parallel_for(m, row_grain(m, k, n),
                    [&](std::int64_t r0, std::int64_t r1) {
                      mm_rows(ta, tb, r0, r1, k, n, a, lda, b, ldb, c);
                    });
}

}  // namespace tsdx::tensor::kernels
