// parallel_for.hpp — tsdx::par: the process-wide intra-op thread pool.
//
// Contract (see DESIGN.md "Compute kernels & threading model"):
//
// * Deterministic work partitioning. parallel_for(total, grain, fn) splits
//   [0, total) into fixed chunks of `grain` (last chunk partial); chunk
//   boundaries are a pure function of (total, grain) and NEVER of the thread
//   count. Kernels derive `grain` from the problem shape alone, so a kernel
//   that writes disjoint chunk outputs produces bit-identical results at any
//   thread count — the property the serving layer's batched-vs-sequential
//   identity test pins down.
// * Cross-chunk reductions go through tree_sum: per-chunk partials combined
//   by a fixed-order pairwise tree, again independent of thread count.
// * One pool per process, sized by set_threads(n) / the TSDX_NUM_THREADS
//   environment variable (read once, at first use), defaulting to the
//   hardware concurrency. `threads() == 1` runs everything inline.
// * Re-entrancy and concurrent callers are safe but not multiplied: if the
//   pool is already busy (another thread's parallel_for is in flight, or fn
//   itself calls parallel_for), the new call simply runs its chunks inline
//   on the calling thread. Inter-op worker threads (src/serve) therefore
//   never stack intra-op pools on top of each other.
// * fn must not throw: chunks run on pool threads with no unwind channel
//   back to the caller. Kernels are pure arithmetic and satisfy this.
//
// This file (with parallel_for.cpp) is the only place outside src/serve/
// allowed to construct std::thread — enforced by tools/tsdx_lint.py, rule
// `raw-thread`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace tsdx::par {

/// Chunk body: process the half-open index range [begin, end).
using ChunkFn = std::function<void(std::int64_t begin, std::int64_t end)>;

/// Current intra-op budget (pool workers + the calling thread). Lazily
/// initialized from TSDX_NUM_THREADS, else std::thread::hardware_concurrency.
std::size_t threads();

/// Resize the pool to an n-thread budget (n-1 workers; the caller is the
/// n-th). n == 0 is treated as 1. Blocks until in-flight loops finish.
void set_threads(std::size_t n);

/// True when TSDX_NUM_THREADS was set in the environment — callers that
/// compute a default budget (src/serve) must not override an explicit user
/// choice.
bool env_override();

/// Run fn over [0, total) in chunks of `grain`. Chunks are claimed by the
/// pool workers and the calling thread; returns after every chunk completed.
/// `grain` must be >= 1 and should be a pure function of the problem shape.
void parallel_for(std::int64_t total, std::int64_t grain, const ChunkFn& fn);

/// Deterministic parallel sum: double partial per `grain`-chunk, combined by
/// a fixed-order pairwise tree. Bit-identical at any thread count.
double tree_sum(const float* data, std::int64_t n, std::int64_t grain);

/// Pick a chunk grain so each chunk carries roughly `kTargetChunkCost`
/// (~32k) units of work, given `cost_per_item` units per index. Pure
/// function of its arguments — safe for deterministic partitioning.
std::int64_t suggest_grain(std::int64_t total, std::int64_t cost_per_item);

}  // namespace tsdx::par
