// gemm.hpp — cache-blocked, panel-packed single-precision GEMM kernels.
//
// mm(ta, tb, m, k, n, a, b, c) computes
//
//     C[M, N] += op(A)[M, K] · op(B)[K, N]
//
// over row-major storage, where op(X) is X (Trans::kN) or the transpose of
// the stored matrix (Trans::kT): with ta == kT, `a` is stored [K, M]; with
// tb == kT, `b` is stored [N, K]. Accumulating (+=) semantics serve both the
// forward pass (callers pass a zeroed C) and gradient accumulation (C is the
// grad buffer).
//
// Implementation notes (see DESIGN.md "Compute kernels & threading model"):
//
// * C rows are partitioned across tsdx::par with a grain derived from the
//   shape alone (row_grain), so chunk boundaries — and therefore results —
//   are bit-identical at any thread count (chunks write disjoint C rows).
// * Within a chunk, A and op(B) are packed into contiguous panels
//   (KC x NC column panels of op(B), row panels of op(A)), making every
//   inner-loop access unit-stride regardless of ta/tb; the 4-row micro
//   kernel's inner loop is a contiguous multiply-add over the packed B
//   panel, which GCC/Clang auto-vectorize (verify with -fopt-info-vec).
// * For every C element, contributions accumulate in ascending-k order —
//   the same order as the textbook ikj loop — so the blocked kernel is
//   bit-identical to the naive one (no reassociation, no reordering).
#pragma once

#include <cstdint>

namespace tsdx::tensor::kernels {

enum class Trans : std::uint8_t { kN, kT };

/// C[m, n] += op(A)[m, k] · op(B)[k, n]. Pointers must not alias.
void mm(Trans ta, Trans tb, std::int64_t m, std::int64_t k, std::int64_t n,
        const float* a, const float* b, float* c);

/// C += A · B               A: [m, k]   B: [k, n]
inline void mm_nn(std::int64_t m, std::int64_t k, std::int64_t n,
                  const float* a, const float* b, float* c) {
  mm(Trans::kN, Trans::kN, m, k, n, a, b, c);
}

/// C += A · Bᵀ              A: [m, k]   B stored [n, k]
inline void mm_nt(std::int64_t m, std::int64_t k, std::int64_t n,
                  const float* a, const float* b, float* c) {
  mm(Trans::kN, Trans::kT, m, k, n, a, b, c);
}

/// C += Aᵀ · B              A stored [k, m]   B: [k, n]
inline void mm_tn(std::int64_t m, std::int64_t k, std::int64_t n,
                  const float* a, const float* b, float* c) {
  mm(Trans::kT, Trans::kN, m, k, n, a, b, c);
}

/// Batched product through ONE dispatch: for every g in [0, batch),
///
///     C[g][m, n] += op(A[g])[m, k] · op(B[g])[k, n]
///
/// over dense slices (A advances m*k floats per slice, C advances m*n; B
/// advances `b_stride` floats — pass 0 to share one op(B) across the batch,
/// the weight-matrix case). Per C element the accumulation is the exact
/// ascending-k multiply-add sequence of a per-slice mm() loop, so results
/// are bit-identical to that loop at any thread count; what changes is the
/// dispatch cost: one trace span, one metrics update, one pool invocation
/// and one set of pack buffers for the whole batch, instead of one each per
/// slice. The plan runtime (src/plan) leans on this for attention's many
/// tiny per-(clip, head) products.
void mm_batched(Trans ta, Trans tb, std::int64_t batch, std::int64_t m,
                std::int64_t k, std::int64_t n, const float* a,
                const float* b, std::int64_t b_stride, float* c);

/// Row-partition grain for an (m, k, n) product: a pure function of the
/// shape (never the thread count), a multiple of the micro-kernel height.
std::int64_t row_grain(std::int64_t m, std::int64_t k, std::int64_t n);

}  // namespace tsdx::tensor::kernels
