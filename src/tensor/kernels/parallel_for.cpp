#include "tensor/kernels/parallel_for.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tsdx::par {

namespace {

std::int64_t chunk_count(std::int64_t total, std::int64_t grain) {
  return (total + grain - 1) / grain;
}

/// par.fanouts counts loops dispatched onto the pool workers;
/// par.inline_fanouts counts loops that ran on the calling thread (1-thread
/// budget, single chunk, or pool busy). Together they answer "is the pool
/// actually parallelizing?" on a dashboard.
struct ParMetrics {
  obs::Counter& fanouts;
  obs::Counter& inline_fanouts;
};

ParMetrics& par_metrics() {
  static ParMetrics metrics = [] {
    obs::Registry& r = obs::Registry::global();
    return ParMetrics{r.counter("par.fanouts"),
                      r.counter("par.inline_fanouts")};
  }();
  return metrics;
}

/// True while this thread is executing inside a fan-out — as the publisher
/// running Job::process(), or as a pool worker running a job's chunks. A
/// chunk fn that itself calls parallel_for re-enters Pool::run on such a
/// thread; for the publisher, a try_lock on job_mutex_ — a non-recursive
/// mutex this thread already owns — would be undefined behaviour, so nested
/// fan-outs check this flag and go inline before ever touching the lock
/// (regression: kernel_test's ParallelForNestedReentry).
thread_local bool t_in_fanout = false;

struct FanoutScope {
  FanoutScope() : previous_(t_in_fanout) { t_in_fanout = true; }
  ~FanoutScope() { t_in_fanout = previous_; }
  FanoutScope(const FanoutScope&) = delete;
  FanoutScope& operator=(const FanoutScope&) = delete;

 private:
  const bool previous_;  // save/restore: inline runs nest inside fan-outs
};

/// One fan-out: a chunk counter the participants race on plus a completion
/// latch. Heap-allocated and shared so a worker that wakes late (or finishes
/// after the caller has already moved on) can only ever touch its own job's
/// state, never the next job's.
struct Job {
  const ChunkFn* fn = nullptr;
  std::int64_t total = 0;
  std::int64_t grain = 0;
  std::int64_t nchunks = 0;
  /// Publisher's trace context: pool workers adopt it while processing this
  /// job, so kernel spans inside a fan-out stay on the request's trace.
  obs::trace::Context ctx;
  std::atomic<std::int64_t> next{0};
  Mutex done_mutex{"par.job_done", lockorder::Rank::kPoolDone};
  CondVar done_cv;
  std::int64_t done TSDX_GUARDED_BY(done_mutex) = 0;

  /// Claim and run chunks until none are left. Called by pool workers and by
  /// the thread that published the job.
  void process() TSDX_EXCLUDES(done_mutex) {
    FanoutScope in_fanout;
    for (;;) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) return;
      const std::int64_t begin = c * grain;
      const std::int64_t end = std::min(total, begin + grain);
      (*fn)(begin, end);
      LockGuard lock(done_mutex);
      if (++done == nchunks) done_cv.notify_all();
    }
  }

  void wait() TSDX_EXCLUDES(done_mutex) {
    UniqueLock lock(done_mutex);
    while (done != nchunks) {
      done_cv.wait(lock);
    }
  }
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  ~Pool() {
    // stop_workers() requires config_mutex_; the destructor used to call it
    // bare, racing a concurrent set_threads()/threads() during process
    // teardown. Static-destruction order makes the window narrow, but the
    // annotation made the hole visible — take the lock like everyone else.
    LockGuard lock(config_mutex_);
    stop_workers();
  }

  std::size_t threads() TSDX_EXCLUDES(config_mutex_) {
    LockGuard lock(config_mutex_);
    ensure_init();
    return workers_.size() + 1;
  }

  void set_threads(std::size_t n)
      TSDX_EXCLUDES(job_mutex_, config_mutex_) {
    if (n == 0) n = 1;
    // Taking job_mutex_ first means no fan-out is in flight while workers
    // are torn down and respawned.
    LockGuard job(job_mutex_);
    LockGuard lock(config_mutex_);
    initialized_ = true;
    resize(n - 1);
  }

  void run(std::int64_t total, std::int64_t grain, const ChunkFn& fn)
      TSDX_EXCLUDES(job_mutex_, config_mutex_, state_mutex_) {
    const std::int64_t nchunks = chunk_count(total, grain);
    // Nested parallel_for (fn inside a fan-out calling back in): go inline
    // without touching job_mutex_. The publisher thread *owns* job_mutex_
    // here, and try_lock on a non-recursive mutex the caller already holds
    // is undefined behaviour — this flag check is the fix, not an
    // optimization (see t_in_fanout above).
    if (t_in_fanout || nchunks <= 1) {
      run_inline(total, grain, fn, nchunks);
      return;
    }
    // A pool already busy with another thread's fan-out: fall back inline.
    // Chunk boundaries are identical either way, so results are too.
    if (!job_mutex_.try_lock()) {
      run_inline(total, grain, fn, nchunks);
      return;
    }
    AdoptLock job(job_mutex_);
    std::size_t nworkers = 0;
    {
      LockGuard lock(config_mutex_);
      ensure_init();
      nworkers = workers_.size();
    }
    if (nworkers == 0) {  // 1-thread budget
      run_inline(total, grain, fn, nchunks);
      return;
    }

    par_metrics().fanouts.inc();
    auto shared = std::make_shared<Job>();
    shared->fn = &fn;
    shared->total = total;
    shared->grain = grain;
    shared->nchunks = nchunks;
    shared->ctx = obs::trace::current();
    {
      LockGuard lock(state_mutex_);
      current_ = shared;
      ++epoch_;
    }
    state_cv_.notify_all();
    shared->process();
    shared->wait();
    {
      LockGuard lock(state_mutex_);
      current_.reset();
    }
  }

 private:
  static void run_inline(std::int64_t total, std::int64_t grain,
                         const ChunkFn& fn, std::int64_t nchunks) {
    // The flag also covers the nworkers == 0 caller, which runs fn while
    // still owning job_mutex_ — a nested parallel_for there must not reach
    // the try_lock either.
    FanoutScope in_fanout;
    par_metrics().inline_fanouts.inc();
    for (std::int64_t c = 0; c < nchunks; ++c) {
      fn(c * grain, std::min(total, (c + 1) * grain));
    }
  }

  void ensure_init() TSDX_REQUIRES(config_mutex_) {
    if (initialized_) return;
    initialized_ = true;
    std::size_t n = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("TSDX_NUM_THREADS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && parsed > 0) n = static_cast<std::size_t>(parsed);
    }
    if (n == 0) n = 1;
    resize(n - 1);
  }

  void resize(std::size_t nworkers) TSDX_REQUIRES(config_mutex_) {
    stop_workers();
    {
      LockGuard lock(state_mutex_);
      stop_ = false;
    }
    workers_.reserve(nworkers);
    for (std::size_t i = 0; i < nworkers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop_workers() TSDX_REQUIRES(config_mutex_) {
    {
      LockGuard lock(state_mutex_);
      stop_ = true;
    }
    state_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  void worker_loop() TSDX_EXCLUDES(state_mutex_) {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        UniqueLock lock(state_mutex_);
        while (!stop_ && epoch_ == seen) {
          state_cv_.wait(lock);
        }
        if (stop_) return;
        seen = epoch_;
        job = current_;
      }
      if (job) {
        // Work on behalf of the publisher's trace (if any) so spans emitted
        // inside chunks carry the request's trace ID.
        obs::trace::ContextGuard ctx_guard(job->ctx);
        job->process();
      }
    }
  }

  // Serializes fan-outs: at most one job uses the workers at a time;
  // concurrent callers fall back to inline execution. Guards no fields —
  // it is an exclusion capability, which is why nothing is GUARDED_BY it.
  Mutex job_mutex_{"par.job", lockorder::Rank::kPoolJob};

  // Pool sizing (workers_, initialized_).
  Mutex config_mutex_{"par.config", lockorder::Rank::kPoolConfig};
  bool initialized_ TSDX_GUARDED_BY(config_mutex_) = false;
  std::vector<std::thread> workers_ TSDX_GUARDED_BY(config_mutex_);

  // Job publication: workers sleep on state_cv_ until epoch_ moves.
  Mutex state_mutex_{"par.state", lockorder::Rank::kPoolState};
  CondVar state_cv_;
  std::shared_ptr<Job> current_ TSDX_GUARDED_BY(state_mutex_);
  std::uint64_t epoch_ TSDX_GUARDED_BY(state_mutex_) = 0;
  bool stop_ TSDX_GUARDED_BY(state_mutex_) = false;
};

}  // namespace

std::size_t threads() { return Pool::instance().threads(); }

void set_threads(std::size_t n) { Pool::instance().set_threads(n); }

bool env_override() {
  static const bool set = std::getenv("TSDX_NUM_THREADS") != nullptr;
  return set;
}

void parallel_for(std::int64_t total, std::int64_t grain, const ChunkFn& fn) {
  TSDX_CHECK(grain >= 1, "parallel_for: grain must be >= 1, got ", grain);
  if (total <= 0) return;
  Pool::instance().run(total, grain, fn);
}

double tree_sum(const float* data, std::int64_t n, std::int64_t grain) {
  TSDX_CHECK(grain >= 1, "tree_sum: grain must be >= 1, got ", grain);
  if (n <= 0) return 0.0;
  const std::int64_t nchunks = chunk_count(n, grain);
  std::vector<double> partial(static_cast<std::size_t>(nchunks), 0.0);
  parallel_for(n, grain, [&](std::int64_t begin, std::int64_t end) {
    double acc = 0.0;
    for (std::int64_t i = begin; i < end; ++i) acc += data[i];
    partial[static_cast<std::size_t>(begin / grain)] = acc;
  });
  // Fixed-order pairwise tree: the combination order depends only on the
  // chunk count, never on which thread produced which partial.
  for (std::int64_t width = 1; width < nchunks; width *= 2) {
    for (std::int64_t i = 0; i + width < nchunks; i += 2 * width) {
      partial[static_cast<std::size_t>(i)] +=
          partial[static_cast<std::size_t>(i + width)];
    }
  }
  return partial[0];
}

std::int64_t suggest_grain(std::int64_t total, std::int64_t cost_per_item) {
  constexpr std::int64_t kTargetChunkCost = 32768;
  if (cost_per_item < 1) cost_per_item = 1;
  std::int64_t grain = 1;
  while (grain < total && grain * cost_per_item < kTargetChunkCost) {
    grain *= 2;
  }
  return grain;
}

}  // namespace tsdx::par
