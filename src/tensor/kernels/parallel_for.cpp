#include "tensor/kernels/parallel_for.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tsdx::par {

namespace {

std::int64_t chunk_count(std::int64_t total, std::int64_t grain) {
  return (total + grain - 1) / grain;
}

/// par.fanouts counts loops dispatched onto the pool workers;
/// par.inline_fanouts counts loops that ran on the calling thread (1-thread
/// budget, single chunk, or pool busy). Together they answer "is the pool
/// actually parallelizing?" on a dashboard.
struct ParMetrics {
  obs::Counter& fanouts;
  obs::Counter& inline_fanouts;
};

ParMetrics& par_metrics() {
  static ParMetrics metrics = [] {
    obs::Registry& r = obs::Registry::global();
    return ParMetrics{r.counter("par.fanouts"),
                      r.counter("par.inline_fanouts")};
  }();
  return metrics;
}

/// One fan-out: a chunk counter the participants race on plus a completion
/// latch. Heap-allocated and shared so a worker that wakes late (or finishes
/// after the caller has already moved on) can only ever touch its own job's
/// state, never the next job's.
struct Job {
  const ChunkFn* fn = nullptr;
  std::int64_t total = 0;
  std::int64_t grain = 0;
  std::int64_t nchunks = 0;
  /// Publisher's trace context: pool workers adopt it while processing this
  /// job, so kernel spans inside a fan-out stay on the request's trace.
  obs::trace::Context ctx;
  std::atomic<std::int64_t> next{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::int64_t done = 0;  // guarded by done_mutex

  /// Claim and run chunks until none are left. Called by pool workers and by
  /// the thread that published the job.
  void process() {
    for (;;) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) return;
      const std::int64_t begin = c * grain;
      const std::int64_t end = std::min(total, begin + grain);
      (*fn)(begin, end);
      std::lock_guard<std::mutex> lock(done_mutex);
      if (++done == nchunks) done_cv.notify_all();
    }
  }

  void wait() {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return done == nchunks; });
  }
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  ~Pool() { stop_workers(); }

  std::size_t threads() {
    std::lock_guard<std::mutex> lock(config_mutex_);
    ensure_init();
    return workers_.size() + 1;
  }

  void set_threads(std::size_t n) {
    if (n == 0) n = 1;
    // Taking job_mutex_ first means no fan-out is in flight while workers
    // are torn down and respawned.
    std::lock_guard<std::mutex> job(job_mutex_);
    std::lock_guard<std::mutex> lock(config_mutex_);
    initialized_ = true;
    resize(n - 1);
  }

  void run(std::int64_t total, std::int64_t grain, const ChunkFn& fn) {
    const std::int64_t nchunks = chunk_count(total, grain);
    std::size_t nworkers = 0;
    std::unique_lock<std::mutex> job(job_mutex_, std::try_to_lock);
    if (job.owns_lock()) {
      std::lock_guard<std::mutex> lock(config_mutex_);
      ensure_init();
      nworkers = workers_.size();
    }
    // Inline path: single-chunk loops, a 1-thread budget, or a pool already
    // busy with another fan-out (including fn itself calling parallel_for).
    // Chunk boundaries are identical either way, so results are too.
    if (!job.owns_lock() || nworkers == 0 || nchunks <= 1) {
      par_metrics().inline_fanouts.inc();
      for (std::int64_t c = 0; c < nchunks; ++c) {
        fn(c * grain, std::min(total, (c + 1) * grain));
      }
      return;
    }

    par_metrics().fanouts.inc();
    auto shared = std::make_shared<Job>();
    shared->fn = &fn;
    shared->total = total;
    shared->grain = grain;
    shared->nchunks = nchunks;
    shared->ctx = obs::trace::current();
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      current_ = shared;
      ++epoch_;
    }
    state_cv_.notify_all();
    shared->process();
    shared->wait();
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      current_.reset();
    }
  }

 private:
  void ensure_init() {  // requires config_mutex_
    if (initialized_) return;
    initialized_ = true;
    std::size_t n = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("TSDX_NUM_THREADS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && parsed > 0) n = static_cast<std::size_t>(parsed);
    }
    if (n == 0) n = 1;
    resize(n - 1);
  }

  void resize(std::size_t nworkers) {  // requires config_mutex_
    stop_workers();
    stop_ = false;
    workers_.reserve(nworkers);
    for (std::size_t i = 0; i < nworkers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop_workers() {  // requires config_mutex_ (or destruction)
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      stop_ = true;
    }
    state_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(state_mutex_);
        state_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        job = current_;
      }
      if (job) {
        // Work on behalf of the publisher's trace (if any) so spans emitted
        // inside chunks carry the request's trace ID.
        obs::trace::ContextGuard ctx_guard(job->ctx);
        job->process();
      }
    }
  }

  // Serializes fan-outs: at most one job uses the workers at a time;
  // concurrent callers fall back to inline execution.
  std::mutex job_mutex_;

  // Pool sizing (workers_, initialized_).
  std::mutex config_mutex_;
  bool initialized_ = false;
  std::vector<std::thread> workers_;

  // Job publication: workers sleep on state_cv_ until epoch_ moves.
  std::mutex state_mutex_;
  std::condition_variable state_cv_;
  std::shared_ptr<Job> current_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace

std::size_t threads() { return Pool::instance().threads(); }

void set_threads(std::size_t n) { Pool::instance().set_threads(n); }

bool env_override() {
  static const bool set = std::getenv("TSDX_NUM_THREADS") != nullptr;
  return set;
}

void parallel_for(std::int64_t total, std::int64_t grain, const ChunkFn& fn) {
  TSDX_CHECK(grain >= 1, "parallel_for: grain must be >= 1, got ", grain);
  if (total <= 0) return;
  Pool::instance().run(total, grain, fn);
}

double tree_sum(const float* data, std::int64_t n, std::int64_t grain) {
  TSDX_CHECK(grain >= 1, "tree_sum: grain must be >= 1, got ", grain);
  if (n <= 0) return 0.0;
  const std::int64_t nchunks = chunk_count(n, grain);
  std::vector<double> partial(static_cast<std::size_t>(nchunks), 0.0);
  parallel_for(n, grain, [&](std::int64_t begin, std::int64_t end) {
    double acc = 0.0;
    for (std::int64_t i = begin; i < end; ++i) acc += data[i];
    partial[static_cast<std::size_t>(begin / grain)] = acc;
  });
  // Fixed-order pairwise tree: the combination order depends only on the
  // chunk count, never on which thread produced which partial.
  for (std::int64_t width = 1; width < nchunks; width *= 2) {
    for (std::int64_t i = 0; i + width < nchunks; i += 2 * width) {
      partial[static_cast<std::size_t>(i)] +=
          partial[static_cast<std::size_t>(i + width)];
    }
  }
  return partial[0];
}

std::int64_t suggest_grain(std::int64_t total, std::int64_t cost_per_item) {
  constexpr std::int64_t kTargetChunkCost = 32768;
  if (cost_per_item < 1) cost_per_item = 1;
  std::int64_t grain = 1;
  while (grain < total && grain * cost_per_item < kTargetChunkCost) {
    grain *= 2;
  }
  return grain;
}

}  // namespace tsdx::par
