// nn_ops.hpp — fused neural-network operations with hand-written backward
// passes. These are ops whose composed form would be slow or numerically
// fragile (layernorm, cross-entropy) or that need non-tensor inputs
// (embedding indices, pooling windows, dropout masks).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace tsdx::tensor {

/// Layer normalization over the last dim:
///   y = (x - mean) / sqrt(var + eps) * gamma + beta
/// gamma/beta have shape [D] where D is x's last extent.
Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps = 1e-5f);

/// Mean softmax cross-entropy over a batch of logits.
///   logits: [B, C], targets: B class indices in [0, C).
/// Returns a scalar. Gradient is the numerically stable (softmax - onehot)/B.
Tensor cross_entropy_logits(const Tensor& logits,
                            const std::vector<std::int64_t>& targets);

/// Row-gather from an embedding table: weight [V, D], indices (N) -> [N, D].
/// Backward scatters into the gathered rows.
Tensor embedding_lookup(const Tensor& weight,
                        const std::vector<std::int64_t>& indices);

/// 2-D convolution, NCHW layout.
///   input  [B, Cin, H, W], weight [Cout, Cin, KH, KW], bias [Cout].
/// Output spatial size: (H + 2*pad - KH)/stride + 1 (exact division not
/// required; trailing pixels are dropped, as in PyTorch).
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              std::int64_t stride = 1, std::int64_t pad = 0);

/// 2-D max pooling, NCHW, square window `k`, stride defaults to `k`.
Tensor max_pool2d(const Tensor& input, std::int64_t k, std::int64_t stride = 0);

/// 3-D convolution over space-time volumes, NCTHW layout.
///   input [B, Cin, T, H, W], weight [Cout, Cin, KT, KH, KW], bias [Cout].
/// Separate temporal/spatial stride and padding (kernel may be asymmetric).
Tensor conv3d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              std::int64_t stride_t = 1, std::int64_t stride_s = 1,
              std::int64_t pad_t = 0, std::int64_t pad_s = 0);

/// Inverted dropout: zero with probability p, scale survivors by 1/(1-p).
/// Identity when p == 0. Deterministic given `rng` state.
Tensor dropout(const Tensor& x, float p, Rng& rng);

}  // namespace tsdx::tensor
