#include "tensor/gradcheck.hpp"

#include <cmath>
#include <stdexcept>

namespace tsdx::tensor {

GradCheckResult grad_check(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double eps, double tol) {
  for (const Tensor& t : inputs) {
    if (!t.requires_grad()) {
      throw std::invalid_argument("grad_check: all inputs need requires_grad");
    }
  }

  // Analytic pass.
  for (Tensor& t : inputs) t.zero_grad();
  Tensor loss = fn(inputs);
  if (loss.numel() != 1) {
    throw std::invalid_argument("grad_check: fn must return a scalar");
  }
  loss.backward();

  GradCheckResult result;
  for (std::size_t ti = 0; ti < inputs.size(); ++ti) {
    Tensor& t = inputs[ti];
    const auto analytic = t.grad();
    auto data = t.mutable_data();
    for (std::size_t i = 0; i < data.size(); ++i) {
      const float orig = data[i];
      data[i] = orig + static_cast<float>(eps);
      const double fp = fn(inputs).item();
      data[i] = orig - static_cast<float>(eps);
      const double fm = fn(inputs).item();
      data[i] = orig;

      const double numeric = (fp - fm) / (2.0 * eps);
      const double a = analytic.empty() ? 0.0 : analytic[i];
      const double abs_err = std::abs(a - numeric);
      const double denom = std::max({1.0, std::abs(a), std::abs(numeric)});
      const double rel_err = abs_err / denom;
      result.max_abs_err = std::max(result.max_abs_err, abs_err);
      if (rel_err > result.max_rel_err) {
        result.max_rel_err = rel_err;
        result.detail = "input " + std::to_string(ti) + " elem " +
                        std::to_string(i) + ": analytic=" + std::to_string(a) +
                        " numeric=" + std::to_string(numeric);
      }
      if (rel_err > tol) result.ok = false;
    }
  }
  return result;
}

}  // namespace tsdx::tensor
