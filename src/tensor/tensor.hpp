// tensor.hpp — dense float32 tensor with reverse-mode autograd.
//
// Design
// ------
// * `Tensor` is a cheap value-semantic handle onto a shared `Node`.
// * Every op produces a new contiguous row-major tensor and, when any input
//   requires gradients, records a backward closure on the result node.
// * `Tensor::backward()` runs the tape: topological sort over parents, then
//   each node's closure scatters its `grad` into the parents' `grad` buffers.
// * Gradients accumulate (+=); call `zero_grad()` between steps.
// * `NoGradGuard` disables tape recording for inference-only regions.
//
// The library is deliberately CPU-only and contiguous-only: the models in
// this repo are tiny (DATE = resource-constrained platforms), and a simple
// memory model keeps the autograd engine small enough to grad-check
// exhaustively (see gradcheck.hpp and tests/tensor/*).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "tensor/rng.hpp"
#include "tensor/shape.hpp"

namespace tsdx::tensor {

struct Node;
using NodePtr = std::shared_ptr<Node>;

/// One vertex of the autograd tape. Users never touch Node directly; the
/// Tensor handle below provides the public API.
struct Node {
  Shape shape;
  std::vector<float> data;
  bool requires_grad = false;
  std::vector<float> grad;  ///< same size as data once touched; empty until then
  std::vector<NodePtr> parents;
  /// Reads this->grad, accumulates into parents' grad. Null for leaves and
  /// for results created under NoGradGuard.
  std::function<void(Node&)> backward;

  std::int64_t numel() const { return static_cast<std::int64_t>(data.size()); }

  /// Allocate (zero-filled) gradient storage on first use.
  std::vector<float>& ensure_grad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
    return grad;
  }
};

/// RAII guard: while alive, newly created tensors record no tape (inference).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// True when at least one guard is alive on this thread.
  static bool active();

 private:
  bool previous_;
};

/// Value-semantic handle to a tensor node. Copying shares storage.
class Tensor {
 public:
  /// Default: empty scalar-shaped tensor holding a single zero.
  Tensor() : Tensor(zeros({})) {}
  explicit Tensor(NodePtr node) : node_(std::move(node)) { assert(node_); }

  // ---- construction -------------------------------------------------------
  static Tensor zeros(Shape shape, bool requires_grad = false);
  static Tensor ones(Shape shape, bool requires_grad = false);
  static Tensor full(Shape shape, float value, bool requires_grad = false);
  static Tensor scalar(float value, bool requires_grad = false);
  /// Takes ownership of `values`; size must equal numel(shape).
  static Tensor from_vector(Shape shape, std::vector<float> values,
                            bool requires_grad = false);
  /// i.i.d. N(0, stddev^2).
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f,
                      bool requires_grad = false);
  /// i.i.d. U[lo, hi).
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi,
                             bool requires_grad = false);

  // ---- accessors -----------------------------------------------------------
  const Shape& shape() const { return node_->shape; }
  std::int64_t dim(std::size_t i) const {
    TSDX_SHAPE_ASSERT(i < node_->shape.size(), "dim(", i,
                      "): out of range for ", to_string(node_->shape));
    return node_->shape[i];
  }
  std::size_t rank() const { return node_->shape.size(); }
  std::int64_t numel() const { return node_->numel(); }
  bool requires_grad() const { return node_->requires_grad; }

  std::span<const float> data() const { return node_->data; }
  std::span<float> mutable_data() { return node_->data; }
  std::span<const float> grad() const { return node_->grad; }

  float item() const {
    TSDX_SHAPE_ASSERT(numel() == 1,
                      "item() requires a single-element tensor, got ",
                      to_string(node_->shape));
    return node_->data[0];
  }
  float at(std::int64_t flat_index) const {
    TSDX_CHECK(flat_index >= 0 && flat_index < numel(), "at(", flat_index,
               "): out of range for numel ", numel());
    return node_->data[static_cast<std::size_t>(flat_index)];
  }

  NodePtr node() const { return node_; }

  // ---- autograd ------------------------------------------------------------
  /// Backpropagate from this tensor. If it is non-scalar, `seed` must match
  /// its element count; for scalars the seed defaults to 1.
  void backward() const;
  void backward(std::span<const float> seed) const;
  void zero_grad() { node_->grad.assign(node_->data.size(), 0.0f); }

  /// A detached copy of the data: shares no tape with this tensor.
  Tensor detach() const;

 private:
  NodePtr node_;
};

/// Create a leaf/result node. Internal helper shared by ops.cpp and nn code
/// that defines fused ops; not intended for end users.
Tensor make_tensor(Shape shape, std::vector<float> data, bool requires_grad);

/// Create a result node wired to `parents` with backward closure `bw`
/// (ignored when no parent requires grad or NoGradGuard is active).
Tensor make_op_result(Shape shape, std::vector<float> data,
                      std::vector<NodePtr> parents,
                      std::function<void(Node&)> bw);

/// True if any parent participates in the tape right now.
bool tape_active(const std::vector<NodePtr>& parents);

}  // namespace tsdx::tensor
