#include "tensor/trace_hook.hpp"

#include <utility>

namespace tsdx::tensor::trace {

namespace {
thread_local Sink* g_sink = nullptr;
}  // namespace

Sink* sink() { return g_sink; }

Sink* set_sink(Sink* s) { return std::exchange(g_sink, s); }

void record(OpRecord record) {
  if (g_sink != nullptr) g_sink->on_op(record);
}

void note_node(const NodePtr& node) {
  if (g_sink != nullptr) g_sink->on_node(node);
}

}  // namespace tsdx::tensor::trace
