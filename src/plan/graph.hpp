// graph.hpp — the static op graph tsdx::plan compiles a frozen forward into.
//
// A Graph is born from one traced dynamic forward (trace.hpp): every tensor
// the forward created becomes a Value, every hooked tensor op becomes an Op
// in execution order. Passes (passes.hpp) then rewrite it — constants fold,
// reshapes collapse into aliases, adjacent ops fuse — and the memory planner
// (memory.hpp) assigns every surviving intermediate an offset in a single
// per-worker arena. The result executes through Plan (plan.hpp) with zero
// heap allocation per forward.
//
// Design invariants:
//   * Ops stay in trace order. The dynamic path executed them in exactly
//     this order, so replaying them with the same kernels and the same
//     grains reproduces the dynamic output bit for bit (DESIGN.md §16).
//   * All op geometry (matmul dims, broadcast extents, row counts) is
//     resolved at compile time from the traced node shapes. Values only
//     carry storage facts; an aliased Value (reshape) shares its root's
//     buffer even though the traced shapes differed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sdl/description.hpp"
#include "tensor/tensor.hpp"

namespace tsdx::plan {

using ValueId = std::int32_t;
inline constexpr ValueId kNoValue = -1;

/// Where a Value's bytes live at execution time.
enum class ValueKind : std::uint8_t {
  kInput,     ///< the video batch, bound per call (caller's buffer, no copy)
  kExternal,  ///< frozen weight/table: the plan holds the model node alive
              ///< and reads its storage in place
  kConstant,  ///< folded at compile time; storage owned by the plan
  kArena,     ///< intermediate, placed in the per-worker arena
};

struct Value {
  ValueKind kind = ValueKind::kArena;
  std::int64_t numel = 0;
  ValueId alias_of = kNoValue;  ///< reshape/in-place alias: share root buffer

  /// Compile-time handle on the traced node: data source for constant
  /// folding, and (for kExternal) shared ownership of the weight storage.
  /// Released for kArena values once compilation finishes.
  tensor::NodePtr traced;

  std::vector<float> constant;  ///< kConstant payload
  std::size_t offset = 0;       ///< kArena byte offset (memory.hpp)
};

/// Executable op kinds: the traced set plus the three fusions. Reshape and
/// embedding_lookup never appear — the tracer resolves them into aliases
/// and folded constants respectively.
enum class OpType : std::uint8_t {
  kAdd,
  kMulScalar,
  kGelu,
  kMatmul,
  kMatmulNt,
  kPermute,
  kSumDim,
  kSoftmax,
  kLogSoftmax,
  kLayerNorm,
  // fused (passes.hpp):
  kBiasGelu,         ///< gelu(x + bias), bias suffix-broadcast
  kScaledSoftmaxNt,  ///< softmax(scale * (Q·Kᵀ)) in one buffer
  kAddLayerNorm,     ///< out = LN(x + y), out2 = x + y (residual kept)
};

const char* to_string(OpType type);

/// Suffix-broadcast layout of kAdd (mirrors the dynamic binary_op).
enum class Bcast : std::uint8_t { kSame, kBSmall, kASmall };

struct Op {
  OpType type;
  std::vector<ValueId> inputs;
  ValueId out = kNoValue;
  ValueId out2 = kNoValue;  ///< kAddLayerNorm: the residual sum

  // Attributes, resolved from traced shapes (unused fields stay 0).
  float scalar = 0.0f;  ///< kMulScalar factor / kScaledSoftmaxNt scale
  float eps = 0.0f;     ///< layer-norm epsilon
  Bcast bcast = Bcast::kSame;
  std::int64_t bcast_m = 0;  ///< small operand numel for kBSmall/kASmall
  std::int64_t rows = 0;     ///< row-local ops: row count
  std::int64_t cols = 0;     ///< row-local ops: row width
  // matmul family
  std::int64_t batch = 1, m = 0, k = 0, n = 0;
  bool shared_rhs = false;
  // kSumDim extents
  std::int64_t outer = 0, red = 0, inner = 0;
  // kPermute: output extents + input stride per output axis
  std::vector<std::int64_t> out_extents;
  std::vector<std::int64_t> gather;
};

struct Graph {
  std::vector<Value> values;
  std::vector<Op> ops;  ///< trace order == execution order

  ValueId input = kNoValue;
  tensor::Shape input_shape;
  std::array<ValueId, sdl::kNumSlots> logits{};  ///< per-slot output values

  std::size_t arena_bytes = 0;  ///< set by plan_memory
  int fused_ops = 0;            ///< set by the fusion passes

  /// Follow alias_of links to the value that owns the storage.
  ValueId root(ValueId id) const {
    while (values[static_cast<std::size_t>(id)].alias_of != kNoValue) {
      id = values[static_cast<std::size_t>(id)].alias_of;
    }
    return id;
  }
};

}  // namespace tsdx::plan
