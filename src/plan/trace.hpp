// trace.hpp — build a plan::Graph by observing one dynamic forward.
//
// trace_model() runs `model.forward(zeros(input_shape))` with a
// tensor::trace::Sink installed on the calling thread and converts the
// recorded op stream into a Graph. The zero input is sound because nothing
// input-dependent is ever folded: constant folding only fires on ops whose
// inputs are frozen weights or other folded constants (passes.hpp).
//
// Coverage contract: make_tensor reports every node created while the sink
// is installed. Any node that no hooked op claimed as its output was
// produced by an op the compiler does not understand (conv, pooling,
// dropout-in-training, ...) — trace_model throws TraceError instead of
// guessing, and callers fall back to the dynamic path (executor.hpp).
#pragma once

#include <stdexcept>
#include <string>

#include "core/model.hpp"
#include "plan/graph.hpp"

namespace tsdx::plan {

/// The forward used an op the tracer has no hook for, or violated a
/// structural assumption (e.g. non-suffix broadcast). Never fatal: the
/// executor catches it and serves dynamically.
class TraceError : public std::runtime_error {
 public:
  explicit TraceError(const std::string& what) : std::runtime_error(what) {}
};

/// Trace one frozen forward of `model` at the given input geometry
/// [B, T, C, H, W] into a Graph (ops in execution order, no passes run yet).
/// The model must be in eval mode; the caller guarantees the weights do not
/// change for the lifetime of any plan compiled from the result.
Graph trace_model(const core::ScenarioModel& model,
                  const tensor::Shape& input_shape);

}  // namespace tsdx::plan
