#include "plan/plan.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>

#include "core/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/gemm_wide.hpp"
#include "plan/memory.hpp"
#include "plan/trace.hpp"
#include "tensor/kernels/gemm.hpp"
#include "tensor/kernels/parallel_for.hpp"

namespace tsdx::plan {

namespace wide {
// Portable-TU definition: the wide kernels themselves may only execute on
// hosts that pass this check, so the check must not live in the AVX2 TU.
bool cpu_supported() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}
}  // namespace wide

namespace tt = tsdx::tensor;
namespace kernels = tsdx::tensor::kernels;

const char* to_string(OpType type) {
  switch (type) {
    case OpType::kAdd: return "add";
    case OpType::kMulScalar: return "mul_scalar";
    case OpType::kGelu: return "gelu";
    case OpType::kMatmul: return "matmul";
    case OpType::kMatmulNt: return "matmul_nt";
    case OpType::kPermute: return "permute";
    case OpType::kSumDim: return "sum_dim";
    case OpType::kSoftmax: return "softmax";
    case OpType::kLogSoftmax: return "log_softmax";
    case OpType::kLayerNorm: return "layer_norm";
    case OpType::kBiasGelu: return "bias_gelu";
    case OpType::kScaledSoftmaxNt: return "scaled_softmax_nt";
    case OpType::kAddLayerNorm: return "add_layer_norm";
  }
  return "?";
}

namespace {

/// Mixed-radix permute ranks are bounded by the tubelet reshape (rank 8);
/// a fixed counter keeps the kernel allocation-free.
constexpr std::size_t kMaxRank = 16;

// Same constants as tensor::gelu — the fused kernel must reproduce its
// arithmetic exactly.
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;

inline float gelu_one(float x) {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(u));
}

/// GEMM entry for compiled execution: the wide (AVX2) clone when both the
/// binary and the running CPU support it, the portable kernel otherwise.
/// Identical results either way — see gemm_wide.hpp for the contract.
inline void plan_mm(kernels::Trans ta, kernels::Trans tb, std::int64_t batch,
                    std::int64_t m, std::int64_t k, std::int64_t n,
                    const float* a, const float* b, std::int64_t b_stride,
                    float* c) {
  static const bool use_wide = wide::kCompiledWide && wide::cpu_supported();
  if (use_wide) {
    wide::mm_batched(ta, tb, batch, m, k, n, a, b, b_stride, c);
  } else {
    kernels::mm_batched(ta, tb, batch, m, k, n, a, b, b_stride, c);
  }
}

/// Per-run pointer resolution: value id -> buffer.
struct Binding {
  const Graph& graph;
  const float* input;
  float* arena;

  const float* ptr(ValueId id) const {
    const ValueId r = graph.root(id);
    const Value& v = graph.values[static_cast<std::size_t>(r)];
    switch (v.kind) {
      case ValueKind::kInput:
        return input;
      case ValueKind::kExternal:
        return v.traced->data.data();
      case ValueKind::kConstant:
        return v.constant.data();
      case ValueKind::kArena:
        return arena + v.offset / sizeof(float);
    }
    return nullptr;
  }

  float* wptr(ValueId id) const {
    const ValueId r = graph.root(id);
    const Value& v = graph.values[static_cast<std::size_t>(r)];
    return arena + v.offset / sizeof(float);
  }
};

/// Row softmax, in place: exactly tensor::softmax_lastdim's per-row loop.
inline void softmax_row(float* y, const float* x, std::int64_t d) {
  float mx = x[0];
  for (std::int64_t i = 1; i < d; ++i) mx = std::max(mx, x[i]);
  float sum = 0.0f;
  for (std::int64_t i = 0; i < d; ++i) {
    y[i] = std::exp(x[i] - mx);
    sum += y[i];
  }
  const float inv = 1.0f / sum;
  for (std::int64_t i = 0; i < d; ++i) y[i] *= inv;
}

/// Broadcast add with the modulo hoisted out: out[i] = big[i] + small[i % m]
/// computed block-by-block so the inner loop is a plain vectorizable
/// addition. i % m walks 0..m-1 cyclically, which is exactly what the
/// (block, j) decomposition produces — same elements, same order, same
/// float sums as the dynamic path's per-element-modulo loop.
inline void add_bcast_rows(float* out, const float* big, const float* small,
                           std::int64_t n, std::int64_t m) {
  for (std::int64_t i0 = 0; i0 < n; i0 += m) {
    const std::int64_t len = std::min(m, n - i0);
    const float* xr = big + i0;
    float* yr = out + i0;
    for (std::int64_t j = 0; j < len; ++j) yr[j] = xr[j] + small[j];
  }
}

void run_op(const Op& op, const Binding& b) {
  switch (op.type) {
    case OpType::kAdd: {
      const float* x = b.ptr(op.inputs[0]);
      const float* y = b.ptr(op.inputs[1]);
      float* out = b.wptr(op.out);
      const std::int64_t n = op.rows;
      const std::int64_t m = op.bcast_m;
      switch (op.bcast) {
        case Bcast::kSame:
          for (std::int64_t i = 0; i < n; ++i) out[i] = x[i] + y[i];
          break;
        case Bcast::kBSmall:
          add_bcast_rows(out, x, y, n, m);
          break;
        case Bcast::kASmall:
          add_bcast_rows(out, y, x, n, m);
          break;
      }
      return;
    }
    case OpType::kMulScalar: {
      const float* x = b.ptr(op.inputs[0]);
      float* out = b.wptr(op.out);
      const float s = op.scalar;
      for (std::int64_t i = 0; i < op.rows; ++i) out[i] = x[i] * s;
      return;
    }
    case OpType::kGelu: {
      const float* x = b.ptr(op.inputs[0]);
      float* out = b.wptr(op.out);
      for (std::int64_t i = 0; i < op.rows; ++i) out[i] = gelu_one(x[i]);
      return;
    }
    case OpType::kBiasGelu: {
      const float* x = b.ptr(op.inputs[0]);
      const float* bias = b.ptr(op.inputs[1]);
      float* out = b.wptr(op.out);
      const std::int64_t n = op.rows;
      const std::int64_t m = op.bcast_m;
      // Same values as add-then-gelu: the sum is a float either way. The
      // bias index cycles 0..m-1, so walk it blockwise like add_bcast_rows.
      for (std::int64_t i0 = 0; i0 < n; i0 += m) {
        const std::int64_t len = std::min(m, n - i0);
        const float* xr = x + i0;
        float* yr = out + i0;
        for (std::int64_t j = 0; j < len; ++j) {
          yr[j] = gelu_one(xr[j] + bias[j]);
        }
      }
      return;
    }
    case OpType::kMatmul:
    case OpType::kMatmulNt: {
      const float* x = b.ptr(op.inputs[0]);
      const float* y = b.ptr(op.inputs[1]);
      float* out = b.wptr(op.out);
      const std::int64_t batch = op.batch, m = op.m, k = op.k, n = op.n;
      std::fill_n(out, batch * m * n, 0.0f);  // kernels accumulate
      const bool nt = op.type == OpType::kMatmulNt;
      // One dispatch for the whole batch — attention's per-(clip, head)
      // products are tiny, and per-slice mm() calls would pay the span /
      // metrics / pool / pack-buffer cost `batch` times (the dynamic
      // interpreter does; the compiled path is where the win comes from).
      const std::int64_t bstride =
          op.shared_rhs ? 0 : (nt ? n * k : k * n);
      plan_mm(kernels::Trans::kN,
              nt ? kernels::Trans::kT : kernels::Trans::kN, batch, m, k, n, x,
              y, bstride, out);
      return;
    }
    case OpType::kPermute: {
      const float* x = b.ptr(op.inputs[0]);
      float* out = b.wptr(op.out);
      const std::size_t r = op.out_extents.size();
      const std::size_t n = static_cast<std::size_t>(op.rows);
      if (r <= 1) {  // rank-0/1 permutes are copies
        std::memcpy(out, x, n * sizeof(float));
        return;
      }
      // Mixed-radix walk over the outer axes only; the innermost output
      // axis becomes a strided inner loop (or a memcpy when the source is
      // contiguous). Same element mapping as the dynamic path's
      // per-element counter — the counter bookkeeping just runs once per
      // row instead of once per element.
      const std::int64_t ie = op.out_extents[r - 1];
      const std::int64_t is = op.gather[r - 1];
      std::array<std::int64_t, kMaxRank> counter{};
      std::int64_t src = 0;
      for (std::size_t oi = 0; oi < n; oi += static_cast<std::size_t>(ie)) {
        if (is == 1) {
          std::memcpy(out + oi, x + src,
                      static_cast<std::size_t>(ie) * sizeof(float));
        } else {
          for (std::int64_t j = 0; j < ie; ++j) {
            out[oi + j] = x[src + j * is];
          }
        }
        for (std::size_t ax = r - 1; ax-- > 0;) {
          ++counter[ax];
          src += op.gather[ax];
          if (counter[ax] < op.out_extents[ax]) break;
          src -= op.gather[ax] * op.out_extents[ax];
          counter[ax] = 0;
        }
      }
      return;
    }
    case OpType::kSumDim: {
      const float* x = b.ptr(op.inputs[0]);
      float* out = b.wptr(op.out);
      std::fill_n(out, op.outer * op.inner, 0.0f);
      for (std::int64_t o = 0; o < op.outer; ++o) {
        for (std::int64_t j = 0; j < op.red; ++j) {
          const float* src = x + (o * op.red + j) * op.inner;
          float* dst = out + o * op.inner;
          for (std::int64_t i = 0; i < op.inner; ++i) dst[i] += src[i];
        }
      }
      return;
    }
    case OpType::kSoftmax: {
      const float* x = b.ptr(op.inputs[0]);
      float* out = b.wptr(op.out);
      const std::int64_t rows = op.rows, d = op.cols;
      const std::int64_t grain = par::suggest_grain(rows, d);
      par::parallel_for(rows, grain, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          softmax_row(out + r * d, x + r * d, d);
        }
      });
      return;
    }
    case OpType::kLogSoftmax: {
      const float* x = b.ptr(op.inputs[0]);
      float* out = b.wptr(op.out);
      const std::int64_t rows = op.rows, d = op.cols;
      const std::int64_t grain = par::suggest_grain(rows, d);
      par::parallel_for(rows, grain, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const float* xr = x + r * d;
          float* yr = out + r * d;
          float mx = xr[0];
          for (std::int64_t i = 1; i < d; ++i) mx = std::max(mx, xr[i]);
          float sum = 0.0f;
          for (std::int64_t i = 0; i < d; ++i) sum += std::exp(xr[i] - mx);
          const float lse = mx + std::log(sum);
          for (std::int64_t i = 0; i < d; ++i) yr[i] = xr[i] - lse;
        }
      });
      return;
    }
    case OpType::kLayerNorm: {
      const float* x = b.ptr(op.inputs[0]);
      const float* gamma = b.ptr(op.inputs[1]);
      const float* beta = b.ptr(op.inputs[2]);
      float* out = b.wptr(op.out);
      const std::int64_t rows = op.rows, d = op.cols;
      const float eps = op.eps;
      const std::int64_t grain = par::suggest_grain(rows, d);
      par::parallel_for(rows, grain, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const float* xr = x + r * d;
          float* yr = out + r * d;
          float mean = 0.0f;
          for (std::int64_t i = 0; i < d; ++i) mean += xr[i];
          mean /= static_cast<float>(d);
          float var = 0.0f;
          for (std::int64_t i = 0; i < d; ++i) {
            const float c = xr[i] - mean;
            var += c * c;
          }
          var /= static_cast<float>(d);
          const float istd = 1.0f / std::sqrt(var + eps);
          for (std::int64_t i = 0; i < d; ++i) {
            const float xh = (xr[i] - mean) * istd;
            yr[i] = xh * gamma[i] + beta[i];
          }
        }
      });
      return;
    }
    case OpType::kAddLayerNorm: {
      const float* x = b.ptr(op.inputs[0]);
      const float* y = b.ptr(op.inputs[1]);
      const float* gamma = b.ptr(op.inputs[2]);
      const float* beta = b.ptr(op.inputs[3]);
      float* sum_out = b.wptr(op.out2);
      float* out = b.wptr(op.out);
      const std::int64_t rows = op.rows, d = op.cols;
      const float eps = op.eps;
      const std::int64_t grain = par::suggest_grain(rows, d);
      par::parallel_for(rows, grain, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const float* xr = x + r * d;
          const float* yr = y + r * d;
          float* sr = sum_out + r * d;
          float* nr = out + r * d;
          // The residual sum is materialized (later ops read it), so the
          // normalization below sees the identical float values the
          // standalone add would have produced.
          for (std::int64_t i = 0; i < d; ++i) sr[i] = xr[i] + yr[i];
          float mean = 0.0f;
          for (std::int64_t i = 0; i < d; ++i) mean += sr[i];
          mean /= static_cast<float>(d);
          float var = 0.0f;
          for (std::int64_t i = 0; i < d; ++i) {
            const float c = sr[i] - mean;
            var += c * c;
          }
          var /= static_cast<float>(d);
          const float istd = 1.0f / std::sqrt(var + eps);
          for (std::int64_t i = 0; i < d; ++i) {
            const float xh = (sr[i] - mean) * istd;
            nr[i] = xh * gamma[i] + beta[i];
          }
        }
      });
      return;
    }
    case OpType::kScaledSoftmaxNt: {
      const float* q = b.ptr(op.inputs[0]);
      const float* k = b.ptr(op.inputs[1]);
      float* out = b.wptr(op.out);
      const std::int64_t batch = op.batch, m = op.m, kk = op.k, n = op.n;
      std::fill_n(out, batch * m * n, 0.0f);
      plan_mm(kernels::Trans::kN, kernels::Trans::kT, batch, m, kk, n, q, k,
              op.shared_rhs ? 0 : n * kk, out);
      const std::int64_t rows = batch * m;
      const float scale = op.scalar;
      const std::int64_t grain = par::suggest_grain(rows, n);
      par::parallel_for(rows, grain, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          float* row = out + r * n;
          // Scale first, then softmax over the scaled row — the same float
          // stream as mul_scalar + softmax_lastdim, one buffer instead of
          // three.
          for (std::int64_t i = 0; i < n; ++i) row[i] *= scale;
          softmax_row(row, row, n);
        }
      });
      return;
    }
  }
}

}  // namespace

std::shared_ptr<const Plan> Plan::compile(const core::ScenarioModel& model,
                                          const tensor::Shape& input_shape,
                                          const CompileOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  TSDX_TRACE_SPAN("plan.compile");

  Graph graph = trace_model(model, input_shape);
  fold_constants(graph);
  if (options.fuse_attention_softmax) fuse_attention_softmax(graph);
  if (options.fuse_bias_gelu) fuse_bias_gelu(graph);
  if (options.fuse_residual_norm) fuse_residual_norm(graph);
  plan_memory(graph);

  // Drop compile-only node handles: arena/constant values no longer need
  // the traced storage (externals keep theirs — that *is* the weight).
  for (Value& v : graph.values) {
    if (v.kind != ValueKind::kExternal) v.traced.reset();
  }

  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  auto& reg = obs::Registry::global();
  reg.histogram("plan.compile_ms").observe(ms);
  reg.gauge("plan.arena_bytes")
      .update_max(static_cast<std::int64_t>(graph.arena_bytes));
  reg.counter("plan.fused_ops")
      .inc(static_cast<std::uint64_t>(graph.fused_ops));
  reg.counter("plan.compiled").inc();

  return std::shared_ptr<const Plan>(new Plan(std::move(graph)));
}

void Plan::run(const float* input, float* arena) const {
  const Binding binding{graph_, input, arena};
  for (const Op& op : graph_.ops) run_op(op, binding);
}

const float* Plan::logits_ptr(std::size_t slot, const float* arena) const {
  const ValueId r = graph_.root(graph_.logits[slot]);
  const Value& v = graph_.values[static_cast<std::size_t>(r)];
  TSDX_CHECK(v.kind == ValueKind::kArena,
             "plan: slot logits folded to a constant — nothing to serve");
  return arena + v.offset / sizeof(float);
}

std::string Plan::debug_dump() const {
  std::ostringstream out;
  out << "plan: input " << tt::to_string(graph_.input_shape) << ", "
      << graph_.ops.size() << " ops, " << graph_.values.size() << " values, "
      << graph_.arena_bytes << " arena bytes, " << graph_.fused_ops
      << " fused\n";
  out << "values:\n";
  for (std::size_t i = 0; i < graph_.values.size(); ++i) {
    const Value& v = graph_.values[i];
    out << "  v" << i << " numel=" << v.numel;
    switch (v.kind) {
      case ValueKind::kInput: out << " input"; break;
      case ValueKind::kExternal: out << " external"; break;
      case ValueKind::kConstant: out << " constant"; break;
      case ValueKind::kArena:
        if (v.alias_of != kNoValue) {
          out << " alias->v" << graph_.root(static_cast<ValueId>(i));
        } else {
          out << " arena+" << v.offset;
        }
        break;
    }
    out << "\n";
  }
  out << "ops:\n";
  for (std::size_t i = 0; i < graph_.ops.size(); ++i) {
    const Op& op = graph_.ops[i];
    out << "  #" << i << " " << to_string(op.type) << "(";
    for (std::size_t j = 0; j < op.inputs.size(); ++j) {
      out << (j ? ", " : "") << "v" << op.inputs[j];
    }
    out << ") -> v" << op.out;
    if (op.out2 != kNoValue) out << ", v" << op.out2;
    if (op.type == OpType::kMatmul || op.type == OpType::kMatmulNt ||
        op.type == OpType::kScaledSoftmaxNt) {
      out << " [batch=" << op.batch << " m=" << op.m << " k=" << op.k
          << " n=" << op.n << (op.shared_rhs ? " shared_rhs" : "") << "]";
    }
    out << "\n";
  }
  out << "logits:";
  for (ValueId id : graph_.logits) out << " v" << id;
  out << "\n";
  return out.str();
}

}  // namespace tsdx::plan
