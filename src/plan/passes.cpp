#include "plan/passes.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace tsdx::plan {

namespace {

/// For each value (root-resolved), the indices of ops that read it, in
/// execution order.
std::vector<std::vector<std::size_t>> consumer_map(const Graph& g) {
  std::vector<std::vector<std::size_t>> consumers(g.values.size());
  for (std::size_t i = 0; i < g.ops.size(); ++i) {
    for (ValueId in : g.ops[i].inputs) {
      consumers[static_cast<std::size_t>(g.root(in))].push_back(i);
    }
  }
  return consumers;
}

bool is_graph_output(const Graph& g, ValueId id) {
  for (ValueId out : g.logits) {
    if (g.root(out) == id) return true;
  }
  return false;
}

/// Erase the ops at the given (sorted ascending) indices.
void erase_ops(Graph& g, std::vector<std::size_t> dead) {
  std::sort(dead.begin(), dead.end());
  std::vector<Op> kept;
  kept.reserve(g.ops.size() - dead.size());
  std::size_t next = 0;
  for (std::size_t i = 0; i < g.ops.size(); ++i) {
    if (next < dead.size() && dead[next] == i) {
      ++next;
      continue;
    }
    kept.push_back(std::move(g.ops[i]));
  }
  g.ops = std::move(kept);
}

bool frozen_kind(const Graph& g, ValueId id) {
  const ValueKind kind = g.values[static_cast<std::size_t>(g.root(id))].kind;
  return kind == ValueKind::kExternal || kind == ValueKind::kConstant;
}

}  // namespace

void fold_constants(Graph& graph) {
  std::vector<std::size_t> dead;
  for (std::size_t i = 0; i < graph.ops.size(); ++i) {
    const Op& op = graph.ops[i];
    bool all_frozen = true;
    for (ValueId in : op.inputs) {
      if (!frozen_kind(graph, in)) {
        all_frozen = false;
        break;
      }
    }
    if (!all_frozen) continue;
    Value& out = graph.values[static_cast<std::size_t>(op.out)];
    // The traced node holds the exact value the dynamic forward computed
    // for this op — snapshotting it *is* the fold.
    out.kind = ValueKind::kConstant;
    out.constant = out.traced->data;
    out.alias_of = kNoValue;
    dead.push_back(i);
  }
  erase_ops(graph, std::move(dead));
}

void fuse_bias_gelu(Graph& graph) {
  const auto consumers = consumer_map(graph);
  std::vector<std::size_t> dead;
  for (std::size_t i = 0; i < graph.ops.size(); ++i) {
    const Op& add = graph.ops[i];
    if (add.type != OpType::kAdd || add.bcast != Bcast::kBSmall) continue;
    const ValueId sum = graph.root(add.out);
    if (is_graph_output(graph, sum)) continue;
    const auto& uses = consumers[static_cast<std::size_t>(sum)];
    if (uses.size() != 1) continue;
    Op& gelu = graph.ops[uses[0]];
    if (gelu.type != OpType::kGelu) continue;

    gelu.type = OpType::kBiasGelu;
    gelu.inputs = add.inputs;  // {x, bias}
    gelu.bcast_m = add.bcast_m;
    dead.push_back(i);
    ++graph.fused_ops;
  }
  erase_ops(graph, std::move(dead));
}

void fuse_attention_softmax(Graph& graph) {
  const auto consumers = consumer_map(graph);
  std::vector<std::size_t> dead;
  for (std::size_t i = 0; i < graph.ops.size(); ++i) {
    const Op& mm = graph.ops[i];
    if (mm.type != OpType::kMatmulNt) continue;
    const ValueId scores = graph.root(mm.out);
    if (is_graph_output(graph, scores)) continue;
    const auto& score_uses = consumers[static_cast<std::size_t>(scores)];
    if (score_uses.size() != 1) continue;
    const std::size_t j = score_uses[0];
    const Op& scale = graph.ops[j];
    if (scale.type != OpType::kMulScalar) continue;
    const ValueId scaled = graph.root(scale.out);
    if (is_graph_output(graph, scaled)) continue;
    const auto& scaled_uses = consumers[static_cast<std::size_t>(scaled)];
    if (scaled_uses.size() != 1) continue;
    Op& softmax = graph.ops[scaled_uses[0]];
    if (softmax.type != OpType::kSoftmax) continue;

    softmax.type = OpType::kScaledSoftmaxNt;
    softmax.inputs = mm.inputs;  // {q, k}
    softmax.scalar = scale.scalar;
    softmax.batch = mm.batch;
    softmax.m = mm.m;
    softmax.k = mm.k;
    softmax.n = mm.n;
    softmax.shared_rhs = mm.shared_rhs;
    dead.push_back(i);
    dead.push_back(j);
    graph.fused_ops += 2;
  }
  erase_ops(graph, std::move(dead));
}

void fuse_residual_norm(Graph& graph) {
  const auto consumers = consumer_map(graph);
  std::vector<std::size_t> dead;
  for (std::size_t i = 0; i < graph.ops.size(); ++i) {
    const Op& add = graph.ops[i];
    if (add.type != OpType::kAdd || add.bcast != Bcast::kSame) continue;
    const ValueId sum = graph.root(add.out);
    const auto& uses = consumers[static_cast<std::size_t>(sum)];
    if (uses.empty()) continue;
    // The layer_norm must be the first consumer: out2 is written by the
    // fused op, and every earlier reader would see stale bytes.
    Op& ln = graph.ops[uses[0]];
    if (ln.type != OpType::kLayerNorm) continue;
    if (graph.root(ln.inputs[0]) != sum) continue;

    ln.type = OpType::kAddLayerNorm;
    ln.inputs = {add.inputs[0], add.inputs[1], ln.inputs[1], ln.inputs[2]};
    ln.out2 = add.out;
    dead.push_back(i);
    ++graph.fused_ops;
  }
  erase_ops(graph, std::move(dead));
}

}  // namespace tsdx::plan
