// gemm_wide.cpp — AVX2 build of the blocked GEMM for compiled plans.
//
// Compiled with -mavx2 -mno-fma -ffp-contract=off on x86-64 (see
// src/plan/CMakeLists.txt); every function here may therefore contain AVX2
// instructions and must only run after wide::cpu_supported() returned true
// (cpu_supported() itself lives in plan.cpp, a portable TU). The loop
// nests are a line-for-line replica of src/tensor/kernels/gemm.cpp so the
// per-element float operation sequence — ascending k, one multiply and one
// add per step — is identical; only the vector width the compiler applies
// across independent output columns differs, which cannot change any
// element's value. Keep the two files in sync: a blocking or ordering
// change in one without the other breaks the bit-exactness contract that
// plan_test enforces.

#include "plan/gemm_wide.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/kernels/parallel_for.hpp"

namespace tsdx::plan::wide {

namespace kernels = tsdx::tensor::kernels;
using kernels::Trans;

#if defined(__AVX2__) && !defined(__FMA__)

const bool kCompiledWide = true;

namespace {

// Mirror of the portable kernel's blocking (gemm.cpp): same panel sizes,
// same micro-kernel height, so chunk-internal traversal order matches.
constexpr std::int64_t kMR = 4;
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 128;

void pack_b(Trans tb, const float* b, std::int64_t ldb, std::int64_t pc,
            std::int64_t jc, std::int64_t kc, std::int64_t nc, float* panel) {
  if (tb == Trans::kN) {
    for (std::int64_t p = 0; p < kc; ++p) {
      std::memcpy(panel + p * nc, b + (pc + p) * ldb + jc,
                  static_cast<std::size_t>(nc) * sizeof(float));
    }
  } else {
    for (std::int64_t p = 0; p < kc; ++p) {
      float* dst = panel + p * nc;
      for (std::int64_t j = 0; j < nc; ++j) {
        dst[j] = b[(jc + j) * ldb + (pc + p)];
      }
    }
  }
}

void pack_a(Trans ta, const float* a, std::int64_t lda, std::int64_t r0,
            std::int64_t r1, std::int64_t pc, std::int64_t kc, float* panel) {
  if (ta == Trans::kN) {
    for (std::int64_t i = r0; i < r1; ++i) {
      std::memcpy(panel + (i - r0) * kc, a + i * lda + pc,
                  static_cast<std::size_t>(kc) * sizeof(float));
    }
  } else {
    for (std::int64_t i = r0; i < r1; ++i) {
      float* dst = panel + (i - r0) * kc;
      for (std::int64_t p = 0; p < kc; ++p) {
        dst[p] = a[(pc + p) * lda + i];
      }
    }
  }
}

struct PackScratch {
  std::vector<float> a, b;
};

void mm_rows(Trans ta, Trans tb, std::int64_t r0, std::int64_t r1,
             std::int64_t k, std::int64_t n, const float* a, std::int64_t lda,
             const float* b, std::int64_t ldb, float* c,
             PackScratch& scratch) {
  const std::int64_t kc_max = std::min(kKC, k);
  const std::int64_t nc_max = std::min(kNC, n);
  const bool a_direct = (ta == Trans::kN) && kc_max == k;
  const bool b_direct = (tb == Trans::kN) && nc_max == n;
  std::vector<float>& apack = scratch.a;
  std::vector<float>& bpack = scratch.b;
  if (!a_direct && apack.size() < static_cast<std::size_t>((r1 - r0) * kc_max))
    apack.resize(static_cast<std::size_t>((r1 - r0) * kc_max));
  if (!b_direct && bpack.size() < static_cast<std::size_t>(kc_max * nc_max))
    bpack.resize(static_cast<std::size_t>(kc_max * nc_max));

  for (std::int64_t pc = 0; pc < k; pc += kKC) {
    const std::int64_t kc = std::min(kKC, k - pc);
    const float* apanel;
    if (a_direct) {
      apanel = a + r0 * lda;
    } else {
      pack_a(ta, a, lda, r0, r1, pc, kc, apack.data());
      apanel = apack.data();
    }
    for (std::int64_t jc = 0; jc < n; jc += kNC) {
      const std::int64_t nc = std::min(kNC, n - jc);
      const float* bpanel;
      if (b_direct) {
        bpanel = b + pc * ldb;
      } else {
        pack_b(tb, b, ldb, pc, jc, kc, nc, bpack.data());
        bpanel = bpack.data();
      }

      for (std::int64_t i0 = r0; i0 < r1; i0 += kMR) {
        const std::int64_t mr = std::min(kMR, r1 - i0);
        const float* arow = apanel + (i0 - r0) * kc;
        if (mr == kMR) {
          float* __restrict__ c0 = c + (i0 + 0) * n + jc;
          float* __restrict__ c1 = c + (i0 + 1) * n + jc;
          float* __restrict__ c2 = c + (i0 + 2) * n + jc;
          float* __restrict__ c3 = c + (i0 + 3) * n + jc;
          for (std::int64_t p = 0; p < kc; ++p) {
            const float* __restrict__ bp = bpanel + p * nc;
            const float x0 = arow[p];
            const float x1 = arow[kc + p];
            const float x2 = arow[2 * kc + p];
            const float x3 = arow[3 * kc + p];
            for (std::int64_t j = 0; j < nc; ++j) {
              c0[j] += x0 * bp[j];
              c1[j] += x1 * bp[j];
              c2[j] += x2 * bp[j];
              c3[j] += x3 * bp[j];
            }
          }
        } else {
          for (std::int64_t r = 0; r < mr; ++r) {
            float* __restrict__ crow = c + (i0 + r) * n + jc;
            for (std::int64_t p = 0; p < kc; ++p) {
              const float* __restrict__ bp = bpanel + p * nc;
              const float x = arow[r * kc + p];
              for (std::int64_t j = 0; j < nc; ++j) crow[j] += x * bp[j];
            }
          }
        }
      }
    }
  }
}

}  // namespace

void mm_batched(Trans ta, Trans tb, std::int64_t batch, std::int64_t m,
                std::int64_t k, std::int64_t n, const float* a,
                const float* b, std::int64_t b_stride, float* c) {
  if (batch <= 0 || m <= 0 || k <= 0 || n <= 0) return;
  if (batch == 1 || (b_stride == 0 && ta == Trans::kN)) {
    // One slice, or a shared weight under row-dense A: flatten to a single
    // [rows, n] product, exactly as the portable mm_batched does (it
    // forwards to mm(), whose grain is derived from the flattened row
    // count).
    const std::int64_t rows = (batch == 1) ? m : batch * m;
    const std::int64_t flat_lda = (ta == Trans::kN) ? k : rows;
    par::parallel_for(rows, kernels::row_grain(rows, k, n),
                      [&](std::int64_t r0, std::int64_t r1) {
                        PackScratch scratch;
                        mm_rows(ta, tb, r0, r1, k, n, a, flat_lda, b,
                                (tb == Trans::kN) ? n : k, c, scratch);
                      });
    return;
  }
  const std::int64_t lda = (ta == Trans::kN) ? k : m;
  const std::int64_t ldb = (tb == Trans::kN) ? n : k;
  const std::int64_t a_stride = m * k;
  const std::int64_t c_stride = m * n;
  par::parallel_for(batch * m, kernels::row_grain(m, k, n),
                    [&](std::int64_t r0, std::int64_t r1) {
                      PackScratch scratch;
                      while (r0 < r1) {
                        const std::int64_t g = r0 / m;
                        const std::int64_t lr0 = r0 - g * m;
                        const std::int64_t lr1 = std::min(m, r1 - g * m);
                        mm_rows(ta, tb, lr0, lr1, k, n, a + g * a_stride, lda,
                                b + g * b_stride, ldb, c + g * c_stride,
                                scratch);
                        r0 += lr1 - lr0;
                      }
                    });
}

#else  // !__AVX2__ (or FMA leaked in): portable fallback, never dispatched

const bool kCompiledWide = false;

void mm_batched(Trans ta, Trans tb, std::int64_t batch, std::int64_t m,
                std::int64_t k, std::int64_t n, const float* a,
                const float* b, std::int64_t b_stride, float* c) {
  kernels::mm_batched(ta, tb, batch, m, k, n, a, b, b_stride, c);
}

#endif

}  // namespace tsdx::plan::wide
