#include "plan/trace.hpp"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "tensor/ops.hpp"
#include "tensor/shape.hpp"
#include "tensor/trace_hook.hpp"

namespace tsdx::plan {

namespace tt = tsdx::tensor;

namespace {

/// Collects the two trace streams into a Graph. Structural errors are
/// deferred until finish(): throwing out of on_op would unwind through the
/// traced forward with the sink still installed.
class Tracer final : public tt::trace::Sink {
 public:
  void on_node(const tt::NodePtr& node) override {
    created_.insert(node.get());
    // Hold the node so an id registered later can still read its data even
    // if the forward dropped its last Tensor handle.
    keepalive_.push_back(node);
  }

  void on_op(const tt::trace::OpRecord& rec) override {
    if (!error_.empty()) return;  // first structural error wins
    switch (rec.kind) {
      case tt::trace::OpKind::kReshape: {
        // Row-major contiguous: a reshape is the same bytes under a new
        // shape. Alias instead of emitting an op.
        const ValueId src = value_of(rec.inputs[0]);
        if (!error_.empty()) return;
        Value v;
        v.kind = ValueKind::kArena;
        v.numel = rec.output->numel();
        v.alias_of = src;
        v.traced = rec.output;
        claim(rec.output, add_value(std::move(v)));
        return;
      }
      case tt::trace::OpKind::kEmbeddingLookup: {
        // The index list is a compile-time attribute the hook does not
        // carry, so the output is only reproducible by folding — which is
        // exactly right: the weight is frozen and the indices are fixed per
        // geometry. Snapshot the traced result as a constant.
        if (created_.contains(rec.inputs[0].get())) {
          error_ = "embedding_lookup over a traced intermediate";
          return;
        }
        Value v;
        v.kind = ValueKind::kConstant;
        v.numel = rec.output->numel();
        v.constant = rec.output->data;
        claim(rec.output, add_value(std::move(v)));
        return;
      }
      default:
        break;
    }

    Op op;
    op.inputs.reserve(rec.inputs.size());
    for (const tt::NodePtr& in : rec.inputs) {
      op.inputs.push_back(value_of(in));
      if (!error_.empty()) return;
    }
    if (!resolve_attrs(rec, op)) return;

    Value v;
    v.kind = ValueKind::kArena;
    v.numel = rec.output->numel();
    v.traced = rec.output;
    op.out = add_value(std::move(v));
    claim(rec.output, op.out);
    graph_.ops.push_back(std::move(op));
  }

  /// Validate coverage and hand out the graph.
  ///
  /// Coverage is enforced at the *uses*, not at creation: a node created
  /// during the trace but claimed by no hooked op errors the moment
  /// anything consumes it (value_of) or the moment it turns out to be a
  /// graph output (below). A created node nobody ever reads is provably
  /// dead — data reaches the logits only through op inputs — and is
  /// tolerated: default-constructed Tensor placeholders (e.g.
  /// SlotHeads::forward's std::array<Tensor, kNumSlots>) are exactly such
  /// nodes.
  Graph finish(const tt::Tensor& input,
               const std::array<tt::Tensor, sdl::kNumSlots>& logits) {
    if (!error_.empty()) throw TraceError("plan trace: " + error_);
    const auto input_it = ids_.find(input.node().get());
    if (input_it == ids_.end()) {
      throw TraceError("plan trace: the input tensor never reached an op");
    }
    graph_.input = input_it->second;
    graph_.values[static_cast<std::size_t>(graph_.input)].kind =
        ValueKind::kInput;
    graph_.input_shape = input.shape();
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      const auto it = ids_.find(logits[s].node().get());
      if (it == ids_.end()) {
        throw TraceError("plan trace: slot logits missing from the trace");
      }
      graph_.logits[s] = it->second;
    }
    return std::move(graph_);
  }

 private:
  ValueId add_value(Value v) {
    graph_.values.push_back(std::move(v));
    return static_cast<ValueId>(graph_.values.size() - 1);
  }

  void claim(const tt::NodePtr& node, ValueId id) {
    ids_.emplace(node.get(), id);
  }

  /// Id of an op operand. Unknown nodes created outside the trace are
  /// frozen externals (weights, positional tables, the input — the input is
  /// re-classified in finish()). Unknown nodes created *inside* the trace
  /// escaped through an unhooked op: defer the error.
  ValueId value_of(const tt::NodePtr& node) {
    const auto it = ids_.find(node.get());
    if (it != ids_.end()) return it->second;
    if (created_.contains(node.get())) {
      error_ =
          "an unhooked op's result was consumed (shape " +
          tt::to_string(node->shape) + ")";
      return kNoValue;
    }
    Value v;
    v.kind = ValueKind::kExternal;
    v.numel = node->numel();
    v.traced = node;
    const ValueId id = add_value(std::move(v));
    ids_.emplace(node.get(), id);
    return id;
  }

  /// Fill op attributes from the traced shapes; false + error_ on
  /// structural surprises.
  bool resolve_attrs(const tt::trace::OpRecord& rec, Op& op) {
    const tt::Shape& out_shape = rec.output->shape;
    switch (rec.kind) {
      case tt::trace::OpKind::kAdd: {
        op.type = OpType::kAdd;
        const tt::Shape& as = rec.inputs[0]->shape;
        const tt::Shape& bs = rec.inputs[1]->shape;
        if (tt::same_shape(as, bs)) {
          op.bcast = Bcast::kSame;
          op.bcast_m = rec.output->numel();
        } else if (tt::is_suffix_of(bs, as)) {
          op.bcast = Bcast::kBSmall;
          op.bcast_m = rec.inputs[1]->numel();
        } else if (tt::is_suffix_of(as, bs)) {
          op.bcast = Bcast::kASmall;
          op.bcast_m = rec.inputs[0]->numel();
        } else {
          error_ = "add with non-suffix broadcast";
          return false;
        }
        op.rows = rec.output->numel();
        return true;
      }
      case tt::trace::OpKind::kMulScalar:
        op.type = OpType::kMulScalar;
        op.scalar = rec.scalar;
        op.rows = rec.output->numel();
        return true;
      case tt::trace::OpKind::kGelu:
        op.type = OpType::kGelu;
        op.rows = rec.output->numel();
        return true;
      case tt::trace::OpKind::kMatmul:
      case tt::trace::OpKind::kMatmulNt: {
        const bool nt = rec.kind == tt::trace::OpKind::kMatmulNt;
        op.type = nt ? OpType::kMatmulNt : OpType::kMatmul;
        const tt::Shape& as = rec.inputs[0]->shape;
        const tt::Shape& bs = rec.inputs[1]->shape;
        op.m = as[as.size() - 2];
        op.k = as[as.size() - 1];
        op.n = nt ? bs[bs.size() - 2] : bs[bs.size() - 1];
        op.shared_rhs = bs.size() == 2;
        op.batch = 1;
        for (std::size_t i = 0; i + 2 < as.size(); ++i) op.batch *= as[i];
        return true;
      }
      case tt::trace::OpKind::kPermute: {
        op.type = OpType::kPermute;
        if (rec.perm.size() > 16) {  // plan.cpp's fixed mixed-radix counter
          error_ = "permute rank above the plan kernel limit";
          return false;
        }
        const tt::Shape& as = rec.inputs[0]->shape;
        const tt::Shape strides = tt::row_major_strides(as);
        op.out_extents.assign(out_shape.begin(), out_shape.end());
        op.gather.resize(rec.perm.size());
        for (std::size_t i = 0; i < rec.perm.size(); ++i) {
          op.gather[i] = strides[rec.perm[i]];
        }
        op.rows = rec.output->numel();
        return true;
      }
      case tt::trace::OpKind::kSumDim: {
        op.type = OpType::kSumDim;
        const tt::Shape& as = rec.inputs[0]->shape;
        op.outer = 1;
        op.inner = 1;
        for (std::size_t i = 0; i < rec.dim; ++i) op.outer *= as[i];
        op.red = as[rec.dim];
        for (std::size_t i = rec.dim + 1; i < as.size(); ++i) {
          op.inner *= as[i];
        }
        return true;
      }
      case tt::trace::OpKind::kSoftmax:
      case tt::trace::OpKind::kLogSoftmax:
        op.type = rec.kind == tt::trace::OpKind::kSoftmax
                      ? OpType::kSoftmax
                      : OpType::kLogSoftmax;
        op.cols = out_shape.back();
        op.rows = rec.output->numel() / op.cols;
        return true;
      case tt::trace::OpKind::kLayerNorm:
        op.type = OpType::kLayerNorm;
        op.eps = rec.scalar;
        op.cols = out_shape.back();
        op.rows = rec.output->numel() / op.cols;
        return true;
      case tt::trace::OpKind::kReshape:
      case tt::trace::OpKind::kEmbeddingLookup:
        break;  // handled before resolve_attrs
    }
    error_ = "unexpected op kind in trace";
    return false;
  }

  Graph graph_;
  std::unordered_map<const tt::Node*, ValueId> ids_;
  std::unordered_set<const tt::Node*> created_;
  std::vector<tt::NodePtr> keepalive_;
  std::string error_;
};

/// RAII sink installation (restores the previous sink on unwind).
class SinkScope {
 public:
  explicit SinkScope(tt::trace::Sink* sink)
      : previous_(tt::trace::set_sink(sink)) {}
  ~SinkScope() { tt::trace::set_sink(previous_); }
  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;

 private:
  tt::trace::Sink* previous_;
};

}  // namespace

Graph trace_model(const core::ScenarioModel& model,
                  const tensor::Shape& input_shape) {
  if (model.training()) {
    throw TraceError("plan trace: model is in training mode (freeze first)");
  }
  // The probe input is created before the sink goes live so it reaches the
  // tracer as an external (re-classified to kInput in finish()).
  const tt::Tensor input = tt::Tensor::zeros(input_shape);
  Tracer tracer;
  std::array<tt::Tensor, sdl::kNumSlots> logits;
  {
    tt::NoGradGuard no_grad;
    SinkScope scope(&tracer);
    logits = model.forward(input);
  }
  return tracer.finish(input, logits);
}

}  // namespace tsdx::plan
