// passes.hpp — compile-time rewrites over plan::Graph.
//
// Every pass preserves bit-exact equivalence with the dynamic path: fused
// kernels replay the same per-element arithmetic in the same order as the
// op pair they replace, constants are snapshots of values the dynamic
// forward actually computed, and op order never changes (DESIGN.md §16
// spells out the per-fusion argument).
//
// Pass order in compile(): fold_constants → fuse_* (each gated by
// CompileOptions) → plan_memory (memory.hpp).
#pragma once

#include "plan/graph.hpp"

namespace tsdx::plan {

/// Which fusions to apply. All on by default; tests toggle one at a time to
/// pin each fusion's equivalence independently.
struct CompileOptions {
  bool fuse_bias_gelu = true;
  bool fuse_attention_softmax = true;
  bool fuse_residual_norm = true;
};

/// Ops whose inputs are all frozen (externals or earlier constants) compute
/// the same value every forward: snapshot the traced result and drop the
/// op. Folds the positional-embedding arithmetic out of the hot path.
void fold_constants(Graph& graph);

/// add(x, bias) → gelu  ⇒  kBiasGelu (the Linear-into-GELU seam in Mlp).
/// Fires when the add is a suffix broadcast and the gelu is its only
/// consumer; counts into graph.fused_ops.
void fuse_bias_gelu(Graph& graph);

/// matmul_nt(q, k) → mul_scalar → softmax  ⇒  kScaledSoftmaxNt: attention
/// scores, scaling and row softmax in one arena buffer. Fires when each
/// intermediate has exactly one consumer.
void fuse_attention_softmax(Graph& graph);

/// add(x, y) (same shape) → layer_norm  ⇒  kAddLayerNorm producing both the
/// normed result and the residual sum (out2), since pre-LN blocks reuse the
/// sum. Fires only when the layer_norm is the *first* consumer of the sum —
/// later consumers read out2 after the fused op wrote it.
void fuse_residual_norm(Graph& graph);

}  // namespace tsdx::plan
