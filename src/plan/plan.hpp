// plan.hpp — the executable artifact of the inference plan compiler.
//
// A Plan is a Graph after all passes: constants folded, reshapes aliased,
// fusions applied, every intermediate assigned an arena offset. Executing
// it is a flat loop over ops calling the same blocked kernels (and the same
// tsdx::par grains) the dynamic path uses, reading weights in place from
// the frozen model and intermediates from a caller-provided arena — no heap
// allocation per forward.
//
// Equivalence contract (tested by plan_test, gated by bench_k2_plan): a
// plan's logits are bit-identical to the dynamic forward's at any thread
// count, fusions included, because every kernel replays the dynamic
// kernel's arithmetic element for element in the same order. There is no
// tolerance; the contract is exact equality.
//
// A Plan is immutable after compile() and safe to share across workers;
// each worker brings its own arena (executor.hpp).
#pragma once

#include <memory>
#include <string>

#include "core/model.hpp"
#include "plan/graph.hpp"
#include "plan/passes.hpp"

namespace tsdx::plan {

class Plan {
 public:
  /// Trace `model` at `input_shape`, run the passes, plan memory. Throws
  /// TraceError when the forward uses ops the compiler has no hook for
  /// (callers fall back to the dynamic path). Emits plan.compile_ms,
  /// plan.arena_bytes, plan.fused_ops to obs on success.
  static std::shared_ptr<const Plan> compile(const core::ScenarioModel& model,
                                             const tensor::Shape& input_shape,
                                             const CompileOptions& options);

  /// Execute one forward. `input` is the video batch (input_shape layout,
  /// contiguous); `arena` must hold at least arena_bytes() and be 64-byte
  /// aligned. Logits land inside the arena; read them via logits_ptr().
  void run(const float* input, float* arena) const;

  /// Pointer to slot `s`'s logits ([B, cardinality(s)] row-major) after a
  /// run() on this arena.
  const float* logits_ptr(std::size_t slot, const float* arena) const;

  std::size_t arena_bytes() const { return graph_.arena_bytes; }
  int fused_ops() const { return graph_.fused_ops; }
  const tensor::Shape& input_shape() const { return graph_.input_shape; }
  const Graph& graph() const { return graph_; }

  /// Human-readable listing (values, ops, offsets) — written as a CI
  /// artifact when plan_test fails.
  std::string debug_dump() const;

 private:
  explicit Plan(Graph graph) : graph_(std::move(graph)) {}

  Graph graph_;
};

}  // namespace tsdx::plan
