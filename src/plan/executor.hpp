// executor.hpp — running compiled plans in the serving path.
//
// Three pieces:
//   * Arena       — one 64-byte-aligned block per worker. grow() events are
//                   counted so tests can assert the hot path stops
//                   allocating after warm-up.
//   * PlanCache   — geometry -> compiled plan, shared across workers behind
//                   a tsdx::Mutex at lockorder::Rank::kPlan (rank 43, below
//                   the tsdx::par ranks: compilation traces a forward that
//                   fans out through the pool while the cache lock is
//                   held). Trace failures are cached as null so an
//                   uncompilable model costs one attempt, not one per
//                   batch.
//   * PlanExecutor— per-worker facade with the extractor's contract:
//                   extract_batch() runs the plan when it can and falls
//                   back to the dynamic path when it can't (constrained
//                   decoding, unfrozen model, trace failure), bumping
//                   plan.fallbacks either way it goes.
//
// The compiled path's results are bit-identical to the dynamic path's (see
// plan.hpp); the server may therefore flip ServerConfig::use_compiled_plan
// without any output contract change.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "core/annotations.hpp"
#include "core/extractor.hpp"
#include "plan/plan.hpp"

namespace tsdx::plan {

/// Flat scratch block for one worker's plan executions. Never shrinks;
/// grow() is the only allocation the compiled hot path can trigger, and the
/// growth counter exposes exactly when it does.
class Arena {
 public:
  Arena() = default;

  /// Ensure capacity >= bytes; reallocates (and counts a growth) only when
  /// the current block is too small.
  float* ensure(std::size_t bytes);

  float* data() { return block_.data(); }
  std::size_t capacity_bytes() const { return block_.size() * sizeof(float); }
  /// How many times ensure() had to (re)allocate. A steady-state worker
  /// sits at 1 per geometry high-water mark — plan_test asserts this stays
  /// flat across repeated batches.
  std::uint64_t growths() const { return growths_; }

 private:
  std::vector<float> block_;  // vector<float> keeps 64-byte alignment moot:
                              // operator new aligns to max_align_t and the
                              // kernels only need 4-byte float alignment;
                              // the 64-byte rounding in memory.hpp is about
                              // cache-line separation of reused buffers.
  std::uint64_t growths_ = 0;
};

/// Shared, thread-safe cache of compiled plans keyed by input geometry.
/// One cache per server; workers share it so a geometry compiles once.
class PlanCache {
 public:
  explicit PlanCache(CompileOptions options = {});

  /// The plan for `input_shape`, compiling on miss (the compile runs under
  /// the cache lock — concurrent workers wait rather than duplicating the
  /// trace). Returns nullptr when compilation failed; the failure is
  /// remembered.
  std::shared_ptr<const Plan> get_or_compile(const core::ScenarioModel& model,
                                             const tensor::Shape& input_shape)
      TSDX_EXCLUDES(mutex_);

  const CompileOptions& options() const { return options_; }

 private:
  const CompileOptions options_;
  mutable Mutex mutex_{"plan.cache", lockorder::Rank::kPlan};
  std::map<tensor::Shape, std::shared_ptr<const Plan>> plans_
      TSDX_GUARDED_BY(mutex_);
};

/// Per-worker compiled execution with dynamic fallback. Not thread-safe
/// (each worker owns one); the shared pieces (cache, extractor) are.
class PlanExecutor {
 public:
  PlanExecutor(std::shared_ptr<const core::ScenarioExtractor> extractor,
               std::shared_ptr<PlanCache> cache);

  /// Drop-in for ScenarioExtractor::extract_batch. Compiled when possible,
  /// dynamic otherwise — same results either way.
  std::vector<core::ExtractionResult> extract_batch(
      const data::Batch& batch);

  const Arena& arena() const { return arena_; }
  /// Did the most recent extract_batch() run a compiled plan (vs the
  /// dynamic fallback)? The server stamps this into the flight recorder as
  /// the request's execution path.
  bool last_used_plan() const { return last_used_plan_; }

 private:
  std::shared_ptr<const core::ScenarioExtractor> extractor_;
  std::shared_ptr<PlanCache> cache_;
  Arena arena_;
  std::vector<float> probs_;  // per-slot softmax scratch, reused
  bool last_used_plan_ = false;
  std::uint64_t plan_executions_ = 0;  // compiled runs by *this* executor
};

}  // namespace tsdx::plan
