// gemm_wide.hpp — wide-vector GEMM entry for compiled plans.
//
// The dynamic interpreter runs on the portable blocked kernel in
// src/tensor/kernels/gemm.cpp, compiled for the baseline ISA so one binary
// serves any host. A compiled plan is the natural place to spend
// target-specific effort: this translation unit is built with AVX2 enabled
// (x86-64 + GCC/Clang only; elsewhere it degrades to the portable kernel)
// and run_op dispatches to it when the *running* host supports AVX2.
//
// Bit-exactness contract: these kernels replicate the portable kernel's
// loop structure — identical blocking (kMR/kKC/kNC), identical panel
// packing, and per-C-element accumulation in ascending k order with one
// multiply-then-add per step. Vectorizing across the independent output
// columns j does not reorder any element's own float operations, and the
// unit is compiled with FMA contraction disabled (-mno-fma
// -ffp-contract=off), so every element sees the same two roundings per k
// step as the scalar kernel. plan_test pins this down with memcmp.
#pragma once

#include <cstdint>

#include "tensor/kernels/gemm.hpp"

namespace tsdx::plan::wide {

/// True when this translation unit was built with AVX2 code generation.
/// Callers must also check the running CPU (cpu_supported()) before
/// dispatching here.
extern const bool kCompiledWide;

/// True when the running CPU can execute the wide kernels. Constant per
/// process; defined in plan.cpp — a portable TU — so the check itself never
/// executes AVX2 instructions.
bool cpu_supported();

/// Drop-in for tensor::kernels::mm_batched with the same semantics and the
/// same results, bit for bit. When kCompiledWide is false this forwards to
/// the portable kernel.
void mm_batched(tensor::kernels::Trans ta, tensor::kernels::Trans tb,
                std::int64_t batch, std::int64_t m, std::int64_t k,
                std::int64_t n, const float* a, const float* b,
                std::int64_t b_stride, float* c);

}  // namespace tsdx::plan::wide
