// memory.hpp — liveness-based arena assignment for plan intermediates.
//
// Every kArena value gets a byte offset in one flat per-worker arena
// (executor.hpp owns the actual block). Placement is first-fit over live
// intervals: a value is born at the op that writes it and dies after its
// last reader (graph outputs live to the end), and two values may share
// bytes only if their intervals are disjoint — except for sanctioned
// in-place reuse, where an elementwise/row-local op writes straight over an
// input that dies at that op (the kernels in plan.cpp read each element
// before writing it, so aliasing is safe and bit-exact).
//
// Offsets are 64-byte aligned so reused buffers keep cache-line-friendly
// starts regardless of which value occupied them last.
#pragma once

#include "plan/graph.hpp"

namespace tsdx::plan {

/// Byte size a value occupies in the arena (64-byte aligned).
std::size_t aligned_bytes(std::int64_t numel);

/// Assign graph.values[*].offset for every live kArena root and set
/// graph.arena_bytes to the high-water mark. Also performs the in-place
/// aliasing described above (recording it via Value::alias_of).
void plan_memory(Graph& graph);

}  // namespace tsdx::plan
