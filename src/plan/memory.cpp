#include "plan/memory.hpp"

#include <algorithm>
#include <vector>

namespace tsdx::plan {

std::size_t aligned_bytes(std::int64_t numel) {
  const std::size_t raw = static_cast<std::size_t>(numel) * sizeof(float);
  return (raw + 63) & ~static_cast<std::size_t>(63);
}

namespace {

/// May `op` write its output straight over input `idx`? True only for ops
/// whose kernels read element i (of that input) before writing element i of
/// the output — verified per kernel in plan.cpp.
bool in_place_safe(const Op& op, std::size_t idx) {
  switch (op.type) {
    case OpType::kMulScalar:
    case OpType::kGelu:
    case OpType::kSoftmax:
    case OpType::kLogSoftmax:
    case OpType::kLayerNorm:
    case OpType::kBiasGelu:
      return idx == 0;
    case OpType::kAdd:
      // out[i] = a[i] + b[i % m] (or mirrored): the full-size operand is
      // read at the same index it would overwrite.
      if (op.bcast == Bcast::kASmall) return idx == 1;
      return idx == 0;
    default:
      // matmul-family kernels accumulate into the output while streaming
      // the inputs; sharing bytes would corrupt them. kAddLayerNorm's
      // aliasing (out2 over x) is handled separately below.
      return false;
  }
}

}  // namespace

void plan_memory(Graph& graph) {
  const std::size_t n_values = graph.values.size();
  const int n_ops = static_cast<int>(graph.ops.size());
  std::vector<int> def(n_values, -1);
  std::vector<int> death(n_values, -1);

  for (int i = 0; i < n_ops; ++i) {
    const Op& op = graph.ops[i];
    def[static_cast<std::size_t>(graph.root(op.out))] = i;
    if (op.out2 != kNoValue) {
      def[static_cast<std::size_t>(graph.root(op.out2))] = i;
    }
    for (ValueId in : op.inputs) {
      death[static_cast<std::size_t>(graph.root(in))] = i;
    }
  }
  for (ValueId out : graph.logits) {
    death[static_cast<std::size_t>(graph.root(out))] = n_ops;
  }

  // In-place reuse: write the output over an arena input that dies at this
  // op. The alias extends the root's lifetime to cover the new value's.
  auto arena_root_dying_at = [&](ValueId in, int i) -> ValueId {
    const ValueId r = graph.root(in);
    const Value& v = graph.values[static_cast<std::size_t>(r)];
    if (v.kind != ValueKind::kArena) return kNoValue;
    if (def[static_cast<std::size_t>(r)] < 0) return kNoValue;
    if (death[static_cast<std::size_t>(r)] != i) return kNoValue;
    return r;
  };
  auto try_alias = [&](ValueId out, ValueId r, int /*i*/) {
    Value& ov = graph.values[static_cast<std::size_t>(out)];
    const Value& rv = graph.values[static_cast<std::size_t>(r)];
    if (aligned_bytes(ov.numel) > aligned_bytes(rv.numel)) return;
    ov.alias_of = r;
    death[static_cast<std::size_t>(r)] =
        std::max(death[static_cast<std::size_t>(r)],
                 death[static_cast<std::size_t>(out)]);
  };
  for (int i = 0; i < n_ops; ++i) {
    const Op& op = graph.ops[i];
    if (op.type == OpType::kAddLayerNorm) {
      // out2 (the sum) may take over x's bytes: the kernel reads x[i], y[i]
      // then writes sum[i].
      const ValueId r = arena_root_dying_at(op.inputs[0], i);
      if (r != kNoValue && graph.root(op.out2) == op.out2) {
        try_alias(op.out2, r, i);
      }
      continue;
    }
    for (std::size_t idx = 0; idx < op.inputs.size(); ++idx) {
      if (!in_place_safe(op, idx)) continue;
      const ValueId r = arena_root_dying_at(op.inputs[idx], i);
      if (r == kNoValue) continue;
      try_alias(op.out, r, i);
      break;
    }
  }

  // First-fit placement in definition order.
  struct Alloc {
    std::size_t offset;
    std::size_t size;
    int death;
  };
  std::vector<Alloc> live;
  std::size_t high_water = 0;
  auto place = [&](ValueId id, int t) {
    Value& v = graph.values[static_cast<std::size_t>(id)];
    const std::size_t size = aligned_bytes(v.numel);
    live.erase(std::remove_if(live.begin(), live.end(),
                              [t](const Alloc& a) { return a.death < t; }),
               live.end());
    std::sort(live.begin(), live.end(),
              [](const Alloc& a, const Alloc& b) { return a.offset < b.offset; });
    std::size_t cursor = 0;
    for (const Alloc& a : live) {
      if (a.offset >= cursor + size) break;
      cursor = std::max(cursor, a.offset + a.size);
    }
    v.offset = cursor;
    live.push_back({cursor, size, death[static_cast<std::size_t>(id)]});
    high_water = std::max(high_water, cursor + size);
  };
  for (int i = 0; i < n_ops; ++i) {
    const Op& op = graph.ops[i];
    for (ValueId out : {op.out, op.out2}) {
      if (out == kNoValue) continue;
      Value& v = graph.values[static_cast<std::size_t>(out)];
      if (v.kind != ValueKind::kArena || v.alias_of != kNoValue) continue;
      place(out, i);
    }
  }
  graph.arena_bytes = high_water;
}

}  // namespace tsdx::plan
