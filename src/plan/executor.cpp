#include "plan/executor.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "plan/trace.hpp"
#include "sdl/description.hpp"
#include "sdl/taxonomy.hpp"

namespace tsdx::plan {

float* Arena::ensure(std::size_t bytes) {
  const std::size_t floats = (bytes + sizeof(float) - 1) / sizeof(float);
  if (block_.size() < floats) {
    block_.resize(floats);
    ++growths_;
  }
  return block_.data();
}

PlanCache::PlanCache(CompileOptions options) : options_(options) {}

std::shared_ptr<const Plan> PlanCache::get_or_compile(
    const core::ScenarioModel& model, const tensor::Shape& input_shape) {
  LockGuard lock(mutex_);
  const auto it = plans_.find(input_shape);
  if (it != plans_.end()) return it->second;

  std::shared_ptr<const Plan> plan;
  try {
    plan = Plan::compile(model, input_shape, options_);
  } catch (const TraceError&) {
    // Remembered as null: an uncompilable model costs one trace attempt
    // per geometry, then serves dynamically forever.
    obs::Registry::global().counter("plan.trace_errors").inc();
  }
  plans_.emplace(input_shape, plan);
  return plan;
}

namespace {

/// Exactly tensor::softmax_lastdim's per-row arithmetic (and therefore
/// exactly what the dynamic predict_with_confidence computes).
void softmax_row(float* y, const float* x, std::int64_t d) {
  float mx = x[0];
  for (std::int64_t i = 1; i < d; ++i) mx = std::max(mx, x[i]);
  float sum = 0.0f;
  for (std::int64_t i = 0; i < d; ++i) {
    y[i] = std::exp(x[i] - mx);
    sum += y[i];
  }
  const float inv = 1.0f / sum;
  for (std::int64_t i = 0; i < d; ++i) y[i] *= inv;
}

}  // namespace

PlanExecutor::PlanExecutor(
    std::shared_ptr<const core::ScenarioExtractor> extractor,
    std::shared_ptr<PlanCache> cache)
    : extractor_(std::move(extractor)), cache_(std::move(cache)) {
  const std::size_t max_card =
      *std::max_element(sdl::kSlotCardinality.begin(),
                        sdl::kSlotCardinality.end());
  probs_.resize(max_card);
}

std::vector<core::ExtractionResult> PlanExecutor::extract_batch(
    const data::Batch& batch) {
  auto& reg = obs::Registry::global();
  // Constrained decoding and training-mode models stay on the dynamic
  // path: the first needs the full probability rows fed through the exact
  // decoder, the second isn't a pure function of the weights.
  std::shared_ptr<const Plan> plan;
  if (!extractor_->constrained_decoding() && extractor_->frozen()) {
    plan = cache_->get_or_compile(extractor_->model(), batch.video.shape());
  }
  if (!plan) {
    reg.counter("plan.fallbacks").inc();
    last_used_plan_ = false;
    return extractor_->extract_batch(batch);
  }

  TSDX_TRACE_SPAN("plan.execute");
  last_used_plan_ = true;
  // Steady-state arena growth is an anomaly: after the first compiled run
  // per executor the hot path must not allocate (the plan_test contract) —
  // a growth here means a new high-water geometry slipped into a warmed
  // worker, worth a post-mortem dump.
  const std::uint64_t growths_before = arena_.growths();
  float* arena = arena_.ensure(plan->arena_bytes());
  if (plan_executions_ > 0 && arena_.growths() != growths_before) {
    obs::SloEngine::global().note_anomaly(obs::Anomaly::kArenaGrowth,
                                          obs::trace::current().trace_id);
  }
  ++plan_executions_;
  plan->run(batch.video.data().data(), arena);
  reg.counter("plan.executions").inc();

  // Post-processing mirrors ScenarioModel::predict_with_confidence +
  // the extractor's result assembly, element for element: row softmax,
  // first-strict-max argmax, confidence at the argmax.
  const std::int64_t b = batch.video.dim(0);
  const auto& active = extractor_->model().active_slots();
  std::vector<sdl::SlotLabels> labels(static_cast<std::size_t>(b));
  std::vector<std::array<float, sdl::kNumSlots>> conf(
      static_cast<std::size_t>(b));
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    if (!active[s]) {
      for (std::int64_t i = 0; i < b; ++i) {
        labels[static_cast<std::size_t>(i)][s] = 0;
        conf[static_cast<std::size_t>(i)][s] = 0.0f;
      }
      continue;
    }
    const float* logits = plan->logits_ptr(s, arena);
    const auto c = static_cast<std::int64_t>(sdl::kSlotCardinality[s]);
    for (std::int64_t i = 0; i < b; ++i) {
      softmax_row(probs_.data(), logits + i * c, c);
      std::int64_t best = 0;
      for (std::int64_t j = 1; j < c; ++j) {
        if (probs_[static_cast<std::size_t>(j)] >
            probs_[static_cast<std::size_t>(best)]) {
          best = j;
        }
      }
      labels[static_cast<std::size_t>(i)][s] =
          static_cast<std::size_t>(best);
      conf[static_cast<std::size_t>(i)][s] =
          probs_[static_cast<std::size_t>(best)];
    }
  }

  std::vector<core::ExtractionResult> out;
  out.reserve(static_cast<std::size_t>(b));
  for (std::int64_t i = 0; i < b; ++i) {
    core::ExtractionResult result;
    result.description =
        sdl::from_slot_labels(labels[static_cast<std::size_t>(i)]);
    result.confidence = conf[static_cast<std::size_t>(i)];
    result.warnings = sdl::validate(result.description);
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace tsdx::plan
